//! Arena-backed compact trie layout (DESIGN.md §16).
//!
//! epoch-exempt: the compact descent primitives borrow arena blocks the
//! caller already protects (epoch pin in `ConcurrentCompact`, `&mut`
//! exclusivity in `CompactHot`, or private pre-publish builds) — liveness
//! is established a layer above, exactly as for the heap node primitives.
//!
//! The heap backend spends 8 bytes per child pointer and resolves every
//! full-key comparison through an external [`KeySource`](hot_keys::KeySource)
//! — an extra dependent cache miss per verify. This module replaces both:
//!
//! * **32-bit node references** ([`CRef`]): nodes and leaves live in slab
//!   arenas and are addressed by a 32-bit offset word that also carries the
//!   node-type tag, so child arrays shrink to `u32` and the type dispatch
//!   still overlaps the node-body prefetch.
//! * **Inline front-coded leaves** ([`LeafArena`]): leaf records store
//!   `[shared_len][suffix_len][delta][suffix][tid]` adjacent to their TIDs —
//!   the final descent hop and the key verification land in the same cache
//!   lines, and shared prefixes between neighbouring keys are stored once.
//!   The TID is LEB128 varint-coded, so small TIDs (arena offsets, row
//!   ids) cost 1–4 bytes instead of a fixed 8 — on short-key data sets
//!   that fixed word was the largest single per-record overhead.
//!
//! # Offset-word encoding
//!
//! ```text
//! bit 31      30........5  4....0
//! ┌─────┬────────────────┬──────┐
//! │leaf?│ node offset /8 │ tag  │   node reference (leaf? = 0)
//! ├─────┼────────────────┴──────┤
//! │  1  │ leaf byte offset      │   leaf reference
//! └─────┴───────────────────────┘
//! ```
//!
//! The all-zero word is NULL (node-arena unit 0 is reserved, so no node can
//! encode to 0). Node offsets are in 8-byte units: 26 offset bits address a
//! 512 MiB node arena; leaf offsets are plain byte offsets addressing 2 GiB
//! of front-coded records.
//!
//! # Front-coding format
//!
//! Records are append-only. Every [`RESTART_EVERY`]th record (and every
//! record whose shared prefix is naturally empty, and the first record after
//! a slab boundary) is a *restart*: `shared_len == 0`, the key stored whole.
//! Non-restart records store `delta` = byte distance back to their restart
//! record; reconstruction walks forward from the restart applying each
//! record's `[shared][suffix]` patch. Chains are ≤ 15 patches of ≤ 267
//! bytes, so `delta` fits `u16`. Records never straddle a slab boundary
//! (the writer pads and forces a restart), so a record's bytes are always
//! one contiguous slice.
//!
//! # Concurrency contract
//!
//! The arenas are single-writer (enforced by `&mut self` on
//! [`CompactHot`], by the scratch mutex on
//! [`ConcurrentCompact`](crate::ConcurrentCompact)). Readers are lock-free:
//! a record's bytes are fully written *before* the `CRef` naming it is
//! published with Release ordering (a child-slot or root store), and a
//! front-coding chain only ever walks records appended *before* its target,
//! so an Acquire load of any published `CRef` makes every byte the read
//! touches visible. Leaf bytes are never reused (upserts and removals only
//! mark records dead for accounting); only node blocks recycle, and their
//! frees are epoch-deferred by the concurrent wrapper.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::Mutex;
// The arena atomics deliberately stay on std (not the sync_shim): the loom
// models cover the heap ROWEX protocol, and the shim has no AtomicPtr. The
// slab table and root word are TSan-checked instead; every site is
// manifested in lint/atomics.toml.
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};

use crate::bulk::BulkLoadError;
use crate::node::builder::Builder;
use crate::node::{geometry_compact, NodeTag, RawNode, MAX_FANOUT};
use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, PaddedKey, MAX_KEY_LEN, MAX_TID};

/// Slab size for both arenas: 1 MiB — large enough that boundary padding is
/// noise, small enough that capacity tracks live data closely.
const SLAB_BYTES: usize = 1 << 20;

/// Node-arena allocation granule (offsets are stored in these units).
const NODE_UNIT: usize = 8;

/// Node-arena slab size in 8-byte units.
const NODE_SLAB_UNITS: u32 = (SLAB_BYTES / NODE_UNIT) as u32;

/// Node offsets get 26 bits (bit 31 is the leaf flag, bits 0..=4 the tag):
/// the node arena tops out at `2^26 * 8` = 512 MiB.
const NODE_UNIT_LIMIT: u32 = 1 << 26;

/// Leaf offsets get 31 bits: the leaf arena tops out at 2 GiB.
const LEAF_BYTE_LIMIT: u64 = 1 << 31;

/// A leaf-arena front-coding restart is forced at least this often.
///
/// Sized for space over reconstruction speed: restarts store the full key,
/// so on a sorted (bulk) fill the amortized restart overhead halves with
/// each doubling, while the chain a reader may walk grows linearly (32
/// records is ~9 sequential cache lines worst case on 64-byte keys). The
/// worst-case chain span — `32 * (4 + 255 + 8)` bytes — stays far inside
/// the u16 delta field.
const RESTART_EVERY: u32 = 32;

/// Bit 31 of a [`CRef`]: set = leaf reference.
const CLEAF_BIT: u32 = 1 << 31;

/// Low 5 bits of a node [`CRef`]: the [`NodeTag`].
const CTAG_MASK: u32 = 0x1F;

/// Default node-arena capacity (the 26-bit offset ceiling).
pub(crate) const DEFAULT_NODE_CAP: usize = (NODE_UNIT_LIMIT as usize) * NODE_UNIT;

/// Default leaf-arena capacity (the 31-bit offset ceiling).
pub(crate) const DEFAULT_LEAF_CAP: usize = LEAF_BYTE_LIMIT as usize;

/// A 32-bit compact reference: NULL, a tagged node offset, or a leaf offset
/// (see the module docs for the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    /// The null reference (empty slot / empty trie).
    pub(crate) const NULL: CRef = CRef(0);

    /// Reference to the leaf record at byte offset `off`.
    #[inline]
    pub(crate) fn leaf(off: u32) -> CRef {
        debug_assert_eq!(off & CLEAF_BIT, 0, "leaf offset fits 31 bits");
        CRef(off | CLEAF_BIT)
    }

    /// Reference to the node at unit offset `units` with layout `tag`.
    #[inline]
    pub(crate) fn node(units: u32, tag: NodeTag) -> CRef {
        debug_assert!((1..NODE_UNIT_LIMIT).contains(&units), "unit offset in range");
        CRef((units << 5) | tag as u32)
    }

    #[inline]
    pub(crate) fn is_null(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub(crate) fn is_leaf(self) -> bool {
        self.0 & CLEAF_BIT != 0
    }

    #[inline]
    pub(crate) fn is_node(self) -> bool {
        !self.is_null() && !self.is_leaf()
    }

    /// Leaf byte offset. Caller must know this is a leaf reference.
    #[inline]
    pub(crate) fn leaf_off(self) -> u32 {
        debug_assert!(self.is_leaf());
        self.0 & !CLEAF_BIT
    }

    /// Node layout tag. Caller must know this is a node reference.
    #[inline]
    pub(crate) fn tag(self) -> NodeTag {
        debug_assert!(self.is_node());
        NodeTag::from_u8((self.0 & CTAG_MASK) as u8)
    }

    /// Node unit offset. Caller must know this is a node reference.
    #[inline]
    pub(crate) fn units(self) -> u32 {
        debug_assert!(self.is_node());
        self.0 >> 5
    }
}

/// Which arena rejected an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaKind {
    /// The compound-node arena (32-bit unit offsets, 512 MiB ceiling).
    Node,
    /// The front-coded leaf arena (31-bit byte offsets, 2 GiB ceiling).
    Leaf,
}

/// An arena ran out of address space or configured capacity. The trie is
/// left exactly as it was before the failing operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull {
    /// The arena that was exhausted.
    pub kind: ArenaKind,
    /// Bytes the failing allocation asked for.
    pub requested: usize,
    /// The arena's configured capacity in bytes.
    pub capacity: usize,
}

impl std::fmt::Display for ArenaFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.kind {
            ArenaKind::Node => "node",
            ArenaKind::Leaf => "leaf",
        };
        write!(
            f,
            "{kind} arena full: {} more bytes requested of {} capacity",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for ArenaFull {}

/// Exact allocator-level accounting for one [`CompactHot`] /
/// [`ConcurrentCompact`](crate::ConcurrentCompact) instance (the
/// `bytes_per_key` satellite API: fig9 reports these numbers, not
/// `size_of` summations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes of slab memory reserved by the node arena.
    pub node_capacity_bytes: usize,
    /// Bytes of live (reachable) node allocations.
    pub node_live_bytes: usize,
    /// Number of live compound nodes.
    pub node_live_count: usize,
    /// High-water mark of `node_live_bytes`.
    pub node_hwm_bytes: usize,
    /// Bytes of slab memory reserved by the leaf arena.
    pub leaf_capacity_bytes: usize,
    /// Bytes appended to the leaf arena (live records + dead records + pad).
    pub leaf_tail_bytes: usize,
    /// Bytes of dead leaf records and slab-boundary padding.
    pub leaf_dead_bytes: usize,
    /// Number of live leaf records.
    pub leaf_records: usize,
}

impl ArenaStats {
    /// Total slab memory reserved by both arenas — the allocator-level
    /// footprint fig9 reports.
    pub fn capacity_bytes(&self) -> usize {
        self.node_capacity_bytes + self.leaf_capacity_bytes
    }

    /// Total live bytes across both arenas (node allocations plus leaf
    /// records still reachable).
    pub fn live_bytes(&self) -> usize {
        self.node_live_bytes + (self.leaf_tail_bytes - self.leaf_dead_bytes)
    }
}

/// Lock-free-readable table of lazily allocated slabs.
///
/// The table is sized for the arena's capacity up front (a few KiB of
/// pointers), so readers never chase a reallocated spine: they Acquire-load
/// the slab pointer and index into it.
struct SlabTable {
    slabs: Box<[AtomicPtr<u8>]>,
}

impl SlabTable {
    fn new(cap_bytes: usize) -> SlabTable {
        let n = cap_bytes.div_ceil(SLAB_BYTES);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicPtr::new(std::ptr::null_mut()));
        SlabTable {
            slabs: v.into_boxed_slice(),
        }
    }

    /// Allocate slab `idx` (zeroed, 64-byte aligned). Writer-side only.
    fn grow(&self, idx: usize) {
        let layout = Layout::from_size_align(SLAB_BYTES, 64).expect("valid slab layout");
        // SAFETY: non-zero size, valid alignment; failure aborts via the
        // null check below.
        let p = unsafe { alloc_zeroed(layout) };
        assert!(!p.is_null(), "slab allocation failed");
        // pairs-with: slab-table
        self.slabs[idx].store(p, Ordering::Release);
    }

    /// Base pointer of slab `idx`.
    ///
    /// Ordering: **Acquire** — pairs with the **Release** in
    /// [`grow`](Self::grow); a reader holding an offset into this slab
    /// observes the zeroed (and since-written) slab bytes.
    #[inline]
    fn get(&self, idx: usize) -> *mut u8 {
        // pairs-with: slab-table
        let p = self.slabs[idx].load(Ordering::Acquire);
        debug_assert!(!p.is_null(), "slab {idx} referenced before allocation");
        p
    }
}

impl Drop for SlabTable {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(SLAB_BYTES, 64).expect("valid slab layout");
        for slot in self.slabs.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: allocated by `grow` with this exact layout, and
                // dropping the table ends all borrows of arena memory.
                unsafe { dealloc(p, layout) };
            }
        }
    }
}

/// Writer-side bookkeeping of the node arena (under the writer mutex).
struct NodeArenaState {
    /// Bump cursor in 8-byte units. Starts at 1: unit 0 is reserved so a
    /// node reference can never encode to the NULL word.
    next_unit: u32,
    /// Slabs allocated so far.
    slab_count: usize,
    /// Per-size-class free lists (index = size in units): COW makes node
    /// churn the hottest allocator traffic, and exact-size recycling keeps
    /// the arena from fragmenting (all sizes are 8-byte-granular).
    free: Vec<Vec<u32>>,
    live_bytes: usize,
    live_nodes: usize,
    hwm_bytes: usize,
}

/// Slab arena for compound nodes, addressed by 26-bit unit offsets.
struct NodeArena {
    table: SlabTable,
    cap_bytes: usize,
    state: Mutex<NodeArenaState>,
}

impl NodeArena {
    fn new(cap_bytes: usize) -> NodeArena {
        let cap_bytes = cap_bytes.min(DEFAULT_NODE_CAP);
        NodeArena {
            table: SlabTable::new(cap_bytes),
            cap_bytes,
            state: Mutex::new(NodeArenaState {
                next_unit: 1,
                slab_count: 0,
                free: Vec::new(),
                live_bytes: 0,
                live_nodes: 0,
                hwm_bytes: 0,
            }),
        }
    }

    /// Allocate `bytes` (a multiple of 8) and return the unit offset.
    fn alloc(&self, bytes: usize) -> Result<u32, ArenaFull> {
        debug_assert_eq!(bytes % NODE_UNIT, 0);
        let units_len = (bytes / NODE_UNIT) as u32;
        let mut st = self.state.lock().expect("node arena poisoned");
        let off = if let Some(off) = st
            .free
            .get_mut(units_len as usize)
            .and_then(|list| list.pop())
        {
            off
        } else {
            let mut off = st.next_unit;
            // Allocations never straddle a slab boundary: pad to the next
            // slab when the tail fragment is too small (counted as waste —
            // it is capacity the census can never reach).
            let rem = NODE_SLAB_UNITS - off % NODE_SLAB_UNITS;
            if rem < units_len {
                off += rem;
            }
            let end = off as u64 + units_len as u64;
            if end > NODE_UNIT_LIMIT as u64 || end * NODE_UNIT as u64 > self.cap_bytes as u64 {
                return Err(ArenaFull {
                    kind: ArenaKind::Node,
                    requested: bytes,
                    capacity: self.cap_bytes,
                });
            }
            while (st.slab_count as u32) * NODE_SLAB_UNITS < end as u32 {
                self.table.grow(st.slab_count);
                st.slab_count += 1;
            }
            st.next_unit = end as u32;
            off
        };
        st.live_bytes += bytes;
        st.live_nodes += 1;
        st.hwm_bytes = st.hwm_bytes.max(st.live_bytes);
        Ok(off)
    }

    /// Recycle the block at `units_off` (`bytes` as allocated).
    ///
    /// The caller guarantees no reference to the block remains (or, in the
    /// concurrent wrapper, that the epoch does).
    fn free(&self, units_off: u32, bytes: usize) {
        let units_len = bytes / NODE_UNIT;
        let mut st = self.state.lock().expect("node arena poisoned");
        if st.free.len() <= units_len {
            st.free.resize_with(units_len + 1, Vec::new);
        }
        st.free[units_len].push(units_off);
        st.live_bytes -= bytes;
        st.live_nodes -= 1;
    }

    /// Pointer to the block at `units_off`. Lock-free.
    #[inline]
    fn ptr(&self, units_off: u32) -> *mut u8 {
        let slab = (units_off / NODE_SLAB_UNITS) as usize;
        let within = (units_off % NODE_SLAB_UNITS) as usize * NODE_UNIT;
        // SAFETY: every published offset lies inside a grown slab, and
        // blocks never straddle slab boundaries.
        unsafe { self.table.get(slab).add(within) }
    }
}

/// Writer-side bookkeeping of the leaf arena (under the writer mutex).
struct LeafWriter {
    /// Bump cursor in bytes.
    tail: u32,
    /// Slabs allocated so far.
    slab_count: usize,
    /// Records appended since (and including) the current restart.
    since_restart: u32,
    /// Byte offset of the current restart record.
    restart_off: u32,
    /// Length of the most recently appended key.
    last_len: usize,
    /// Bytes of the most recently appended key (front-coding reference).
    last_key: [u8; MAX_KEY_LEN],
    /// Live records (appended minus marked-dead).
    records: usize,
    /// Bytes of dead records plus slab-boundary padding.
    dead_bytes: usize,
}

/// Append-only slab arena of front-coded `[shared][suffix_len][delta]
/// [suffix][tid varint]` leaf records, addressed by 31-bit byte offsets.
struct LeafArena {
    table: SlabTable,
    cap_bytes: usize,
    state: Mutex<LeafWriter>,
}

/// Fixed per-record header: `shared: u8`, `suffix_len: u8`, `delta: u16`.
const LEAF_HEADER: usize = 4;

/// LEB128 length of `tid` (1..=10 bytes; one byte below 128).
#[inline]
fn varint_len(tid: u64) -> usize {
    (63 - (tid | 1).leading_zeros() as usize) / 7 + 1
}

/// Write `v` as LEB128 at `p`; returns bytes written.
///
/// # Safety
/// `p` must be valid for [`varint_len`]`(v)` bytes of writes.
#[inline]
unsafe fn write_varint(mut p: *mut u8, mut v: u64) -> usize {
    let mut n = 1;
    // SAFETY: the caller guarantees `p` is writable for `varint_len(v)`
    // bytes; the loop advances exactly that far (one byte per 7-bit group).
    unsafe {
        while v >= 0x80 {
            *p = v as u8 | 0x80;
            p = p.add(1);
            v >>= 7;
            n += 1;
        }
        *p = v as u8;
    }
    n
}

/// Decode the LEB128 value at `p`.
///
/// # Safety
/// `p` must point at a value written by [`write_varint`].
#[inline]
unsafe fn read_varint(mut p: *const u8) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        // SAFETY: the caller guarantees `p` points at a well-formed
        // LEB128 value, so a terminator byte (< 0x80) is reached before
        // the record ends; each step stays within that encoding.
        let b = unsafe { *p };
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
        // SAFETY: not the terminator yet, so at least one more encoded
        // byte follows within the record.
        p = unsafe { p.add(1) };
    }
}

/// Byte length of the LEB128 value at `p` (scan to the terminator byte).
///
/// # Safety
/// `p` must point at a value written by [`write_varint`].
#[inline]
unsafe fn varint_len_at(mut p: *const u8) -> usize {
    let mut n = 1;
    // SAFETY: the caller guarantees `p` points at a well-formed LEB128
    // value; the scan stops at its terminator byte (< 0x80), which is
    // within the record by construction.
    unsafe {
        while *p >= 0x80 {
            p = p.add(1);
            n += 1;
        }
    }
    n
}

impl LeafArena {
    fn new(cap_bytes: usize) -> LeafArena {
        let cap_bytes = cap_bytes.min(DEFAULT_LEAF_CAP);
        LeafArena {
            table: SlabTable::new(cap_bytes),
            cap_bytes,
            state: Mutex::new(LeafWriter {
                tail: 0,
                slab_count: 0,
                since_restart: 0,
                restart_off: 0,
                last_len: 0,
                last_key: [0u8; MAX_KEY_LEN],
                records: 0,
                dead_bytes: 0,
            }),
        }
    }

    /// Append a record for `key → tid`; returns its byte offset.
    ///
    /// Front-coding is against the *previously appended* key (append order
    /// is key order during bulk load, insertion order otherwise — coding
    /// quality varies, correctness does not). The record bytes are fully
    /// written before this returns, so publishing the offset with a Release
    /// store afterwards makes them visible to any Acquire reader.
    fn append(&self, key: &[u8], tid: u64) -> Result<u32, ArenaFull> {
        debug_assert!(key.len() <= MAX_KEY_LEN && tid <= MAX_TID);
        let mut st = self.state.lock().expect("leaf arena poisoned");
        let mut shared = key
            .iter()
            .zip(st.last_key[..st.last_len].iter())
            .take_while(|(a, b)| a == b)
            .count();
        if st.since_restart >= RESTART_EVERY {
            shared = 0;
        }
        let mut off = st.tail;
        let mut pad = 0u32;
        let tid_len = varint_len(tid);
        let mut rec_len = (LEAF_HEADER + (key.len() - shared) + tid_len) as u32;
        let rem = SLAB_BYTES as u32 - off % SLAB_BYTES as u32;
        if rem < rec_len || (shared != 0 && rem < (LEAF_HEADER + key.len() + tid_len) as u32) {
            // Pad to the slab boundary and restart there: records never
            // straddle slabs, and a restart record's chain walk never
            // crosses back either. (The second condition re-checks with the
            // restart-sized record, since forcing a restart grows it.)
            shared = 0;
            rec_len = (LEAF_HEADER + key.len() + tid_len) as u32;
            if rem < rec_len {
                pad = rem;
                off += rem;
            }
        }
        let end = off as u64 + rec_len as u64;
        if end > LEAF_BYTE_LIMIT || end > self.cap_bytes as u64 {
            return Err(ArenaFull {
                kind: ArenaKind::Leaf,
                requested: rec_len as usize,
                capacity: self.cap_bytes,
            });
        }
        while (st.slab_count as u64) * (SLAB_BYTES as u64) < end {
            self.table.grow(st.slab_count);
            st.slab_count += 1;
        }
        let restart = shared == 0;
        let delta: u16 = if restart {
            0
        } else {
            let d = off - st.restart_off;
            debug_assert!(d <= u16::MAX as u32, "restart chain span fits the u16 delta");
            d as u16
        };
        let suffix = &key[shared..];
        let p = self.rec_ptr(off);
        // SAFETY: `off..off + rec_len` lies inside the slab grown above and
        // is exclusively owned until the offset is published; all stores go
        // through byte pointers, so alignment is irrelevant.
        unsafe {
            *p = shared as u8;
            *p.add(1) = suffix.len() as u8;
            let delta_bytes = delta.to_le_bytes();
            *p.add(2) = delta_bytes[0];
            *p.add(3) = delta_bytes[1];
            std::ptr::copy_nonoverlapping(suffix.as_ptr(), p.add(LEAF_HEADER), suffix.len());
            let wrote = write_varint(p.add(LEAF_HEADER + suffix.len()), tid);
            debug_assert_eq!(wrote, tid_len, "sized and written varint agree");
        }
        if restart {
            st.restart_off = off;
            st.since_restart = 0;
        }
        st.since_restart += 1;
        st.tail = end as u32;
        st.dead_bytes += pad as usize;
        st.records += 1;
        st.last_key[..key.len()].copy_from_slice(key);
        st.last_len = key.len();
        Ok(off)
    }

    /// Account the record at `off` as dead (bytes are never reused — the
    /// record may still serve front-coding chains of its neighbours).
    fn mark_dead(&self, off: u32) {
        let p = self.rec_ptr(off);
        // SAFETY: `off` names a fully written record; the varint scan
        // stays inside it.
        let (suffix_len, tid_len) = unsafe {
            let sl = *p.add(1) as usize;
            (sl, varint_len_at(p.add(LEAF_HEADER + sl)))
        };
        let mut st = self.state.lock().expect("leaf arena poisoned");
        st.dead_bytes += LEAF_HEADER + suffix_len + tid_len;
        st.records -= 1;
    }

    /// Pointer to the record at byte offset `off`. Lock-free.
    #[inline]
    fn rec_ptr(&self, off: u32) -> *mut u8 {
        let slab = (off as usize) / SLAB_BYTES;
        let within = (off as usize) % SLAB_BYTES;
        // SAFETY: every published offset lies inside a grown slab and
        // records never straddle slab boundaries.
        unsafe { self.table.get(slab).add(within) }
    }

    /// Prefetch the record at `off` (header + suffix head + TID share the
    /// first lines).
    #[inline]
    fn prefetch(&self, off: u32) {
        hot_bits::prefetch_read(self.rec_ptr(off));
    }

    /// The TID of the record at `off`.
    #[inline]
    fn tid_at(&self, off: u32) -> u64 {
        let p = self.rec_ptr(off);
        // SAFETY: fully written record; the varint decode stays inside it.
        unsafe {
            let suffix_len = *p.add(1) as usize;
            read_varint(p.add(LEAF_HEADER + suffix_len))
        }
    }

    /// Reconstruct the full key of the record at `off` into `buf`; returns
    /// its length.
    ///
    /// Restart records copy their suffix straight out; front-coded records
    /// walk forward from their restart applying each record's
    /// `[shared][suffix]` patch. Every record the walk touches was appended
    /// (hence fully written) before `off` was.
    fn load_key_into(&self, off: u32, buf: &mut [u8; MAX_KEY_LEN]) -> usize {
        let p = self.rec_ptr(off);
        // SAFETY: fully written record header.
        let (shared, suffix_len) = unsafe { (*p as usize, *p.add(1) as usize) };
        if shared == 0 {
            // SAFETY: suffix bytes follow the 4-byte header.
            unsafe {
                std::ptr::copy_nonoverlapping(p.add(LEAF_HEADER), buf.as_mut_ptr(), suffix_len);
            }
            return suffix_len;
        }
        // SAFETY: non-restart records hold a valid little-endian delta.
        let delta = unsafe { u16::from_le_bytes([*p.add(2), *p.add(3)]) } as u32;
        let mut q = off - delta;
        loop {
            let qp = self.rec_ptr(q);
            // SAFETY: `q` walks full records between the restart and `off`,
            // all inside one slab, all written before `off` was published.
            let (sh, sl) = unsafe { (*qp as usize, *qp.add(1) as usize) };
            // SAFETY: `sh + sl <= MAX_KEY_LEN` for every stored key.
            unsafe {
                std::ptr::copy_nonoverlapping(qp.add(LEAF_HEADER), buf.as_mut_ptr().add(sh), sl);
            }
            if q == off {
                return sh + sl;
            }
            // SAFETY: the TID varint follows the suffix inside record `q`.
            let tid_len = unsafe { varint_len_at(qp.add(LEAF_HEADER + sl)) };
            q += (LEAF_HEADER + sl + tid_len) as u32;
        }
    }

    /// Whether the record at `off` stores exactly `key`. Staged: length
    /// check, suffix compare, then (only for front-coded records) the chain
    /// reconstruction of the shared prefix.
    fn equals_key(&self, off: u32, key: &[u8], buf: &mut [u8; MAX_KEY_LEN]) -> bool {
        let p = self.rec_ptr(off);
        // SAFETY: fully written record header.
        let (shared, suffix_len) = unsafe { (*p as usize, *p.add(1) as usize) };
        if shared + suffix_len != key.len() {
            return false;
        }
        // SAFETY: suffix bytes follow the header.
        let suffix = unsafe { std::slice::from_raw_parts(p.add(LEAF_HEADER), suffix_len) };
        if suffix != &key[shared..] {
            return false;
        }
        if shared == 0 {
            return true;
        }
        let len = self.load_key_into(off, buf);
        debug_assert_eq!(len, key.len());
        buf[..shared] == key[..shared]
    }
}

/// Cache lines prefetched per upcoming node (same as the heap descent).
const PREFETCH_LINES: usize = 4;

/// Cache lines prefetched of the next sibling subtree during scans.
const SIBLING_PREFETCH_LINES: usize = 1;

/// Reusable mutation state for the compact trie: descent stack, decode
/// builder, and the alloc/retire tracking that keeps failed operations
/// leak-free and successful ones publish-then-retire ordered.
pub(crate) struct CompactScratch {
    /// Reused padded-key buffer for mutating operations.
    pub(crate) key_buf: Option<Box<PaddedKey>>,
    /// Reused descent stack: (node, selected entry index).
    stack: Vec<(CRef, usize)>,
    /// Reused decode buffer for the copy-on-write paths.
    builder: Option<Builder>,
    /// Nodes allocated by the in-flight operation but not yet reachable:
    /// freed if the operation fails, forgotten once it publishes.
    fresh: Vec<CRef>,
    /// Leaf record appended by the in-flight operation, if any: marked dead
    /// if the operation fails.
    fresh_leaf: Option<u32>,
    /// Nodes the operation replaced (unreachable once it published): the
    /// caller drains these — immediately in [`CompactHot`], epoch-deferred
    /// in [`ConcurrentCompact`](crate::ConcurrentCompact).
    pub(crate) retired: Vec<CRef>,
}

impl CompactScratch {
    pub(crate) fn new() -> CompactScratch {
        CompactScratch {
            key_buf: Some(Box::new(PaddedKey::new())),
            stack: Vec::with_capacity(16),
            builder: None,
            fresh: Vec::new(),
            fresh_leaf: None,
            retired: Vec::new(),
        }
    }
}

/// The shared compact-trie state: both arenas plus the root word and length.
/// [`CompactHot`] owns one exclusively; the concurrent wrapper shares one
/// behind an `Arc` with a mutexed [`CompactScratch`].
pub(crate) struct CompactInner {
    root: AtomicU32,
    // Length is monotonic bookkeeping, never a synchronization point (the
    // root/cvalue Acquire is what publishes structure) — Relaxed, like the
    // heap MemCounter.
    len: AtomicUsize,
    nodes: NodeArena,
    leaves: LeafArena,
}

impl CompactInner {
    pub(crate) fn new(node_cap: usize, leaf_cap: usize) -> CompactInner {
        CompactInner {
            root: AtomicU32::new(0),
            len: AtomicUsize::new(0),
            nodes: NodeArena::new(node_cap),
            leaves: LeafArena::new(leaf_cap),
        }
    }

    /// Load the root reference.
    ///
    /// Ordering: **Acquire** — pairs with the **Release** in
    /// [`publish_root`](Self::publish_root); a reader that observes a new
    /// root observes its fully written arena bytes.
    #[inline]
    pub(crate) fn load_root(&self) -> CRef {
        // pairs-with: croot
        CRef(self.root.load(Ordering::Acquire))
    }

    /// Publish a new root (single-writer).
    ///
    /// Ordering: **Release** — all arena writes that built the new subtree
    /// happen-before this store; pairs with the **Acquire** in
    /// [`load_root`](Self::load_root).
    #[inline]
    fn publish_root(&self, r: CRef) {
        // pairs-with: croot
        self.root.store(r.0, Ordering::Release);
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    #[inline]
    fn set_len(&self, n: usize) {
        self.len.store(n, Ordering::Relaxed);
    }

    /// Typed view of the node at `r` (the compact analogue of the heap's
    /// tagged-pointer decode: tag from the offset word, body in the arena).
    #[inline]
    pub(crate) fn raw(&self, r: CRef) -> RawNode {
        RawNode {
            base: self.nodes.ptr(r.units()),
            tag: r.tag(),
        }
    }

    /// Compound height of the subtree behind a builder value word (the
    /// compact child-height resolver passed to the `*_with` builder
    /// primitives — value words here are `CRef` bit patterns, never heap
    /// pointers).
    #[inline]
    fn word_height(&self, w: u64) -> u8 {
        let r = CRef(w as u32);
        if r.is_node() {
            self.raw(r).height()
        } else {
            0
        }
    }

    /// Decode the compact node at `raw` into `builder` (widened value
    /// words).
    fn decode_compact_into(&self, raw: RawNode, builder: &mut Builder) {
        raw.positions_into(&mut builder.positions);
        raw.read_entries_compact(&mut builder.sparse, &mut builder.values);
        builder.height = raw.height();
    }

    /// Encode `builder` into a freshly arena-allocated compact node.
    fn encode_compact(&self, builder: &Builder) -> Result<CRef, ArenaFull> {
        let n = builder.values.len();
        assert!((2..=MAX_FANOUT).contains(&n), "entry count {n}");
        let tag = NodeTag::choose(&builder.positions);
        let geo = geometry_compact(tag, n);
        let units = self.nodes.alloc(geo.alloc_size)?;
        let raw = RawNode {
            base: self.nodes.ptr(units),
            tag,
        };
        raw.init_header(n, builder.height);
        raw.fill_compact(&builder.positions, &builder.sparse, &builder.values);
        Ok(CRef::node(units, tag))
    }

    /// [`encode_compact`](Self::encode_compact), recording the allocation
    /// in the scratch's fresh list so a later failure in the same operation
    /// frees it.
    fn encode_tracked(&self, builder: &Builder, s: &mut CompactScratch) -> Result<CRef, ArenaFull> {
        let r = self.encode_compact(builder)?;
        s.fresh.push(r);
        Ok(r)
    }

    /// Return the node block at `r` to the arena free list.
    ///
    /// Caller guarantees no reference to it remains (operation failure
    /// before publish, post-publish retirement, or epoch quiescence).
    pub(crate) fn free_node(&self, r: CRef) {
        let raw = self.raw(r);
        let bytes = geometry_compact(r.tag(), raw.count()).alloc_size;
        self.nodes.free(r.units(), bytes);
    }

    /// Point lookup (the compact Listing 2): tag dispatch from the offset
    /// word overlaps the node-body prefetch, and the final verify reads the
    /// inline record the last descent hop already pulled toward the cache.
    pub(crate) fn get_padded(&self, key: &PaddedKey, buf: &mut [u8; MAX_KEY_LEN]) -> Option<u64> {
        let mut cur = self.load_root();
        while cur.is_node() {
            let raw = self.raw(cur);
            hot_bits::prefetch_node(raw.base, PREFETCH_LINES);
            let idx = raw.search(raw.extract_dense(key.padded()));
            cur = CRef(raw.cvalue(idx));
        }
        if cur.is_null() {
            return None;
        }
        let off = cur.leaf_off();
        if self.leaves.equals_key(off, key.bytes(), buf) {
            Some(self.leaves.tid_at(off))
        } else {
            None
        }
    }

    /// Insert core. All arena allocations strictly precede any publish in
    /// every branch, so an [`ArenaFull`] leaves the published tree
    /// untouched (the wrapper then rolls the scratch's fresh list back).
    ///
    /// The heap trie's fused insert fast path is intentionally absent: it
    /// is asserted byte-identical to the general builder path over there,
    /// so always taking the builder path preserves structure-digest
    /// equality between backends.
    fn insert_inner(
        &self,
        s: &mut CompactScratch,
        key: &PaddedKey,
        tid: u64,
    ) -> Result<Option<u64>, ArenaFull> {
        let root = self.load_root();
        if root.is_null() {
            let off = self.leaves.append(key.bytes(), tid)?;
            s.fresh_leaf = Some(off);
            self.publish_root(CRef::leaf(off));
            self.set_len(1);
            return Ok(None);
        }

        // Descend to the candidate leaf, recording the path.
        s.stack.clear();
        let mut cur = root;
        while cur.is_node() {
            let raw = self.raw(cur);
            let idx = raw.search(raw.extract_dense(key.padded()));
            s.stack.push((cur, idx));
            cur = CRef(raw.cvalue(idx));
        }
        let old_off = cur.leaf_off();
        let mut stored_buf = [0u8; MAX_KEY_LEN];
        let stored_len = self.leaves.load_key_into(old_off, &mut stored_buf);
        let mismatch = hot_bits::first_mismatch_bit(&stored_buf[..stored_len], key.bytes());
        let Some(pos) = mismatch else {
            // Upsert: append the new record, swap the leaf word in place,
            // retire the old record's bytes to the dead count.
            let old_tid = self.leaves.tid_at(old_off);
            let new_off = self.leaves.append(key.bytes(), tid)?;
            s.fresh_leaf = Some(new_off);
            match s.stack.last() {
                None => self.publish_root(CRef::leaf(new_off)),
                Some(&(node, idx)) => self.raw(node).store_cvalue(idx, CRef::leaf(new_off).0),
            }
            self.leaves.mark_dead(old_off);
            return Ok(Some(old_tid));
        };
        assert!(pos < u16::MAX as usize, "mismatch position fits u16");
        let key_bit = hot_bits::bit_at(key.bytes(), pos);

        let new_off = self.leaves.append(key.bytes(), tid)?;
        s.fresh_leaf = Some(new_off);
        let new_leaf = CRef::leaf(new_off);

        if s.stack.is_empty() {
            // The root was a single leaf: grow into the first 2-entry node.
            let (zero, one) = if key_bit == 1 {
                (CRef::leaf(old_off).0 as u64, new_leaf.0 as u64)
            } else {
                (new_leaf.0 as u64, CRef::leaf(old_off).0 as u64)
            };
            let b = Builder::pair(pos as u16, zero, one, 1);
            let new_root = self.encode_tracked(&b, s)?;
            self.publish_root(new_root);
            self.set_len(self.len() + 1);
            return Ok(None);
        }

        // Find the node the new BiNode belongs to (same rule as the heap
        // trie: deepest node whose root BiNode position is <= the mismatch,
        // then hand upward-growing single-child cases to the child).
        let mut level = s.stack.len() - 1;
        while level > 0 && self.raw(s.stack[level].0).min_position() as usize > pos {
            level -= 1;
        }
        let (_, mut idx) = s.stack[level];
        let mut raw = self.raw(s.stack[level].0);
        let (mut lo, mut hi) = raw.affected_range(pos, idx);

        if lo == hi && CRef(raw.cvalue(lo)).is_node() {
            level += 1;
            idx = s.stack[level].1;
            raw = self.raw(s.stack[level].0);
            (lo, hi) = raw.affected_range(pos, idx);
            debug_assert_eq!((lo, hi), (0, raw.count() - 1));
        }

        if lo == hi && CRef(raw.cvalue(lo)).is_leaf() && raw.height() > 1 {
            // Leaf-node pushdown: a single slot store publishes the new
            // height-1 node.
            let old_leaf = CRef(raw.cvalue(lo));
            let (zero, one) = if key_bit == 1 {
                (old_leaf.0 as u64, new_leaf.0 as u64)
            } else {
                (new_leaf.0 as u64, old_leaf.0 as u64)
            };
            let pushed = {
                let b = Builder::pair(pos as u16, zero, one, 1);
                self.encode_tracked(&b, s)?
            };
            raw.store_cvalue(lo, pushed.0);
            self.set_len(self.len() + 1);
            return Ok(None);
        }

        // General path: decode, insert, re-encode (or split on overflow).
        let mut builder = s.builder.take().unwrap_or_else(Builder::empty);
        self.decode_compact_into(raw, &mut builder);
        builder.insert_entry(pos as u16, idx, key_bit, new_leaf.0 as u64);
        if !builder.overflowed() {
            let enc = self.encode_tracked(&builder, s);
            s.builder = Some(builder);
            let new_node = enc?;
            let old_node = s.stack[level].0;
            self.replace_slot(s, level, new_node);
            s.retired.push(old_node);
        } else {
            self.overflow_compact(s, level, builder)?;
        }
        self.set_len(self.len() + 1);
        Ok(None)
    }

    /// Resolve an overflowed builder at `level`: split at the root BiNode,
    /// then parent pull-up (recursing upward) or intermediate node
    /// creation, growing the tree only at the root — the compact mirror of
    /// the heap trie's `handle_overflow`.
    fn overflow_compact(
        &self,
        s: &mut CompactScratch,
        mut level: usize,
        mut builder: Builder,
    ) -> Result<(), ArenaFull> {
        loop {
            debug_assert!(builder.overflowed());
            let (pos, left, right) = builder.split_with(|w| self.word_height(w));
            let left_ref = self.half_ref(&left, s)?;
            let right_ref = self.half_ref(&right, s)?;
            let old_node = s.stack[level].0;

            if level == 0 {
                // Only the root grows the tree height.
                let h = 1 + self.word_height(left_ref.0 as u64)
                    .max(self.word_height(right_ref.0 as u64));
                let b = Builder::pair(pos, left_ref.0 as u64, right_ref.0 as u64, h);
                let new_root = self.encode_tracked(&b, s)?;
                self.publish_root(new_root);
                s.retired.push(old_node);
                s.builder = Some(builder);
                return Ok(());
            }

            let (parent, parent_idx) = s.stack[level - 1];
            let parent_raw = self.raw(parent);
            debug_assert!(parent_raw.height() > builder.height);
            if builder.height + 1 == parent_raw.height() {
                // Parent pull-up: move the split root BiNode into the parent.
                let mut pb = Builder::empty();
                self.decode_compact_into(parent_raw, &mut pb);
                pb.replace_entry_with_pair_with(
                    parent_idx,
                    pos,
                    left_ref.0 as u64,
                    right_ref.0 as u64,
                    |w| self.word_height(w),
                );
                s.retired.push(old_node);
                if pb.overflowed() {
                    builder = pb;
                    level -= 1;
                    continue;
                }
                let new_parent = self.encode_tracked(&pb, s)?;
                self.replace_slot(s, level - 1, new_parent);
                s.retired.push(parent);
                s.builder = Some(builder);
                return Ok(());
            }

            // Intermediate node creation: room between this node and its
            // parent, so an extra level does not increase the tree height.
            let h = 1 + self.word_height(left_ref.0 as u64)
                .max(self.word_height(right_ref.0 as u64));
            let b = Builder::pair(pos, left_ref.0 as u64, right_ref.0 as u64, h);
            let inter = self.encode_tracked(&b, s)?;
            parent_raw.store_cvalue(parent_idx, inter.0);
            s.retired.push(old_node);
            s.builder = Some(builder);
            return Ok(());
        }
    }

    /// Encode a split half, collapsing singleton halves to their bare value.
    fn half_ref(&self, half: &Builder, s: &mut CompactScratch) -> Result<CRef, ArenaFull> {
        if half.len() == 1 {
            Ok(CRef(half.values[0] as u32))
        } else {
            self.encode_tracked(half, s)
        }
    }

    /// Point the slot holding the node at `level` (or the root) at `new`.
    fn replace_slot(&self, s: &mut CompactScratch, level: usize, new: CRef) {
        if level == 0 {
            self.publish_root(new);
        } else {
            let (parent, idx) = s.stack[level - 1];
            self.raw(parent).store_cvalue(idx, new.0);
        }
        s.stack[level].0 = new;
    }

    /// Remove core. Mirrors the heap trie's `remove_padded`; node encodes
    /// can hit [`ArenaFull`], in which case the tree is untouched. The
    /// removed key's leaf record is marked dead only on success.
    fn remove_inner(
        &self,
        s: &mut CompactScratch,
        key: &PaddedKey,
    ) -> Result<Option<u64>, ArenaFull> {
        let root = self.load_root();
        if root.is_null() {
            return Ok(None);
        }
        s.stack.clear();
        let mut cur = root;
        while cur.is_node() {
            let raw = self.raw(cur);
            let idx = raw.search(raw.extract_dense(key.padded()));
            s.stack.push((cur, idx));
            cur = CRef(raw.cvalue(idx));
        }
        let off = cur.leaf_off();
        let mut stored_buf = [0u8; MAX_KEY_LEN];
        if !self.leaves.equals_key(off, key.bytes(), &mut stored_buf) {
            return Ok(None);
        }
        let tid = self.leaves.tid_at(off);

        let Some(&(node, idx)) = s.stack.last() else {
            // The root itself was the leaf.
            self.publish_root(CRef::NULL);
            self.set_len(0);
            self.leaves.mark_dead(off);
            return Ok(Some(tid));
        };
        let raw = self.raw(node);
        let level = s.stack.len() - 1;
        if raw.count() == 2 {
            // Underflow: the node collapses to its surviving entry.
            let survivor = CRef(raw.cvalue(1 - idx));
            self.replace_slot(s, level, survivor);
            s.retired.push(node);
        } else {
            let mut builder = s.builder.take().unwrap_or_else(Builder::empty);
            self.decode_compact_into(raw, &mut builder);
            builder.remove_entry(idx);
            // Underflow merge: a node shrunk to two entries dissolves into
            // its parent when there is room.
            if builder.len() == 2 && level > 0 {
                let (parent, parent_idx) = s.stack[level - 1];
                let parent_raw = self.raw(parent);
                if parent_raw.count() < MAX_FANOUT {
                    let mut pb = Builder::empty();
                    self.decode_compact_into(parent_raw, &mut pb);
                    pb.replace_entry_with_pair_with(
                        parent_idx,
                        builder.positions[0],
                        builder.values[0],
                        builder.values[1],
                        |w| self.word_height(w),
                    );
                    let enc = self.encode_tracked(&pb, s);
                    s.builder = Some(builder);
                    let new_parent = enc?;
                    self.replace_slot(s, level - 1, new_parent);
                    s.retired.push(node);
                    s.retired.push(parent);
                    self.set_len(self.len() - 1);
                    self.leaves.mark_dead(off);
                    return Ok(Some(tid));
                }
            }
            let enc = self.encode_tracked(&builder, s);
            s.builder = Some(builder);
            let new_node = enc?;
            self.replace_slot(s, level, new_node);
            s.retired.push(node);
        }
        self.set_len(self.len() - 1);
        self.leaves.mark_dead(off);
        Ok(Some(tid))
    }

    /// Bulk-load core: validate + collect winners, append their records in
    /// key order (maximal front-coding), then build nodes bottom-up with
    /// the heap loader's exact partitioning.
    ///
    /// # Panics
    /// Panics on [`ArenaFull`] mid-build: unlike the incremental paths
    /// there is no single-publish rollback for a half-built subtree (the
    /// root stays null; appended records become dead bytes).
    pub(crate) fn bulk_inner<K: AsRef<[u8]>>(&self, entries: &[(K, u64)]) -> Result<usize, BulkLoadError> {
        // Pass 1: mirror `bulk::prepare`'s validation and last-write-wins
        // dedup, but record winner *indices* — records are only appended
        // once the whole input is validated.
        let mut winners: Vec<usize> = Vec::with_capacity(entries.len());
        let mut bounds: Vec<u16> = Vec::with_capacity(entries.len().saturating_sub(1));
        let mut prev: Option<&[u8]> = None;
        for (index, (key, tid)) in entries.iter().enumerate() {
            let key = key.as_ref();
            assert!(key.len() <= MAX_KEY_LEN, "key longer than MAX_KEY_LEN");
            assert!(*tid <= MAX_TID, "tid exceeds MAX_TID");
            if let Some(p) = prev {
                match hot_bits::first_mismatch_bit(p, key) {
                    None => {
                        *winners.last_mut().expect("prev implies a winner") = index;
                        continue;
                    }
                    Some(pos) => {
                        if key_bit_padded(p, pos) != 0 {
                            return Err(BulkLoadError::Unsorted { index });
                        }
                        bounds.push(pos as u16);
                    }
                }
            }
            prev = Some(key);
            winners.push(index);
        }
        let n = winners.len();
        match n {
            0 => Ok(0),
            1 => {
                let (key, tid) = &entries[winners[0]];
                let off = self
                    .leaves
                    .append(key.as_ref(), *tid)
                    .unwrap_or_else(|e| panic!("bulk load: {e}"));
                self.publish_root(CRef::leaf(off));
                self.set_len(1);
                Ok(1)
            }
            _ => {
                // Pass 2: append winners in key order, then build.
                let mut leaf_words: Vec<u64> = Vec::with_capacity(n);
                for &i in &winners {
                    let (key, tid) = &entries[i];
                    let off = self
                        .leaves
                        .append(key.as_ref(), *tid)
                        .unwrap_or_else(|e| panic!("bulk load: {e}"));
                    leaf_words.push(CRef::leaf(off).0 as u64);
                }
                let shape = crate::bulk::analyze(&bounds);
                let root = self.build_part(
                    &leaf_words,
                    &bounds,
                    &shape,
                    crate::bulk::Part {
                        lo: 0,
                        hi: n - 1,
                        root: shape.root,
                    },
                );
                self.publish_root(root);
                self.set_len(n);
                Ok(n)
            }
        }
    }

    /// Build the compact subtrie for `part`, bottom-up (the compact mirror
    /// of `bulk::build_part`; same forced-split partitioning, so the node
    /// structure is identical to the heap loader's).
    fn build_part(
        &self,
        leaf_words: &[u64],
        bounds: &[u16],
        shape: &crate::bulk::Shape,
        part: crate::bulk::Part,
    ) -> CRef {
        if part.root == crate::bulk::ENTRY {
            return CRef(leaf_words[part.lo] as u32);
        }
        let mut parts = Vec::with_capacity(MAX_FANOUT);
        crate::bulk::partition_node(shape, part.root, part.lo, part.hi, &mut parts);
        let fences: Vec<u16> = parts[..parts.len() - 1]
            .iter()
            .map(|p| bounds[p.hi])
            .collect();
        let values: Vec<u64> = parts
            .iter()
            .map(|&p| self.build_part(leaf_words, bounds, shape, p).0 as u64)
            .collect();
        let b = Builder::from_fragment_with(&fences, &values, |w| self.word_height(w));
        self.encode_compact(&b)
            .unwrap_or_else(|e| panic!("bulk load: {e}"))
    }
}

/// Bit `pos` of `key` under the zero-padding convention (same helper as the
/// heap bulk loader's private `key_bit`).
#[inline]
fn key_bit_padded(key: &[u8], pos: usize) -> u8 {
    let byte = pos / 8;
    if byte >= key.len() {
        0
    } else {
        (key[byte] >> (7 - pos % 8)) & 1
    }
}

// ---- cursors ----------------------------------------------------------------

/// Ordered iterator over the compact trie's TIDs (the arena analogue of
/// [`Cursor`](crate::Cursor)).
pub struct CompactCursor<'a> {
    inner: &'a CompactInner,
    frames: Vec<(CRef, usize)>,
    pending: Option<u64>,
}

impl Iterator for CompactCursor<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if let Some(tid) = self.pending.take() {
            return Some(tid);
        }
        loop {
            let &(node, idx) = self.frames.last()?;
            let raw = self.inner.raw(node);
            if idx >= raw.count() {
                self.frames.pop();
                continue;
            }
            self.frames.last_mut().expect("non-empty").1 += 1;
            let value = CRef(raw.cvalue(idx));
            if value.is_leaf() {
                return Some(self.inner.leaves.tid_at(value.leaf_off()));
            }
            self.frames.push((value, 0));
        }
    }
}

impl CompactInner {
    /// Iterator over all TIDs in ascending key order.
    fn iter(&self) -> CompactCursor<'_> {
        let mut frames = Vec::new();
        let mut pending = None;
        let root = self.load_root();
        if root.is_node() {
            frames.push((root, 0));
        } else if root.is_leaf() {
            pending = Some(self.leaves.tid_at(root.leaf_off()));
        }
        CompactCursor {
            inner: self,
            frames,
            pending,
        }
    }

    /// Iterator over TIDs whose keys are `>= key` (mirrors the heap trie's
    /// `range_from` positioning rule exactly).
    fn range_from(&self, key: &[u8]) -> CompactCursor<'_> {
        let padded = PaddedKey::from_key(key);
        let mut frames: Vec<(CRef, usize)> = Vec::new();
        let mut pending = None;
        let root = self.load_root();

        if root.is_leaf() {
            let mut buf = [0u8; MAX_KEY_LEN];
            let len = self.leaves.load_key_into(root.leaf_off(), &mut buf);
            if &buf[..len] >= key {
                pending = Some(self.leaves.tid_at(root.leaf_off()));
            }
            return CompactCursor { inner: self, frames, pending };
        }
        if root.is_null() {
            return CompactCursor { inner: self, frames, pending };
        }

        let mut path: Vec<(CRef, usize)> = Vec::new();
        let mut cur = root;
        while cur.is_node() {
            let raw = self.raw(cur);
            let idx = raw.search(raw.extract_dense(padded.padded()));
            path.push((cur, idx));
            cur = CRef(raw.cvalue(idx));
        }
        let mut buf = [0u8; MAX_KEY_LEN];
        let len = self.leaves.load_key_into(cur.leaf_off(), &mut buf);
        match hot_bits::first_mismatch_bit(&buf[..len], padded.bytes()) {
            None => {
                for &(node, idx) in &path {
                    frames.push((node, idx + 1));
                }
                pending = Some(self.leaves.tid_at(cur.leaf_off()));
            }
            Some(pos) => {
                let mut level = path.len() - 1;
                while level > 0 && self.raw(path[level].0).min_position() as usize > pos {
                    level -= 1;
                }
                for &(node, idx) in &path[..level] {
                    frames.push((node, idx + 1));
                }
                let (target, idx) = path[level];
                let (lo, hi) = self.raw(target).affected_range(pos, idx);
                let start = if hot_bits::bit_at(padded.bytes(), pos) == 0 {
                    lo
                } else {
                    hi + 1
                };
                frames.push((target, start));
            }
        }
        CompactCursor { inner: self, frames, pending }
    }
}

/// Reusable compact range-scan state (the arena analogue of
/// [`ScanCursor`](crate::ScanCursor)): padded start key, descent path and
/// in-order frame stack, all recycled so steady-state scans are
/// allocation-free.
pub struct CompactScanCursor {
    key: Box<PaddedKey>,
    path: Vec<(CRef, usize)>,
    frames: Vec<(CRef, usize)>,
}

impl Default for CompactScanCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactScanCursor {
    /// A fresh cursor (buffers grow on first use).
    pub fn new() -> Self {
        CompactScanCursor {
            key: Box::new(PaddedKey::new()),
            path: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Run one scan, appending up to `limit` TIDs (keys `>= key`,
    /// ascending) to `out`. Seek hops prefetch the next node or the inline
    /// leaf record through its offset; the drain prefetches child and
    /// sibling subtrees exactly like the heap scan.
    pub(crate) fn scan_root(
        &mut self,
        inner: &CompactInner,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
    ) {
        if limit == 0 {
            return;
        }
        let root = inner.load_root();
        if root.is_null() {
            return;
        }
        if root.is_leaf() {
            let mut buf = [0u8; MAX_KEY_LEN];
            let len = inner.leaves.load_key_into(root.leaf_off(), &mut buf);
            if &buf[..len] >= key {
                out.push(inner.leaves.tid_at(root.leaf_off()));
            }
            return;
        }
        self.key.set(key);
        self.path.clear();
        let mut cur = root;
        while cur.is_node() {
            let raw = inner.raw(cur);
            let idx = raw.search(raw.extract_dense(self.key.padded()));
            let next = CRef(raw.cvalue(idx));
            if next.is_node() {
                hot_bits::prefetch_node(inner.raw(next).base, PREFETCH_LINES);
            } else if next.is_leaf() {
                inner.leaves.prefetch(next.leaf_off());
            }
            self.path.push((cur, idx));
            cur = next;
        }
        let limit = limit.saturating_add(out.len());
        position_frames(inner, &self.key, &self.path, cur, &mut self.frames, out);
        drain_frames(inner, &mut self.frames, limit, out);
    }
}

/// Turn a completed compact seek descent into an in-order frame stack
/// positioned at the first entry `>= key` (mirrors `scan::position_frames`).
fn position_frames(
    inner: &CompactInner,
    key: &PaddedKey,
    path: &[(CRef, usize)],
    leaf: CRef,
    frames: &mut Vec<(CRef, usize)>,
    out: &mut Vec<u64>,
) {
    frames.clear();
    let mut buf = [0u8; MAX_KEY_LEN];
    let mismatch = if leaf.is_leaf() {
        let len = inner.leaves.load_key_into(leaf.leaf_off(), &mut buf);
        hot_bits::first_mismatch_bit(&buf[..len], key.bytes())
    } else {
        Some(0)
    };
    match mismatch {
        None => {
            for &(node, idx) in path {
                frames.push((node, idx + 1));
            }
            out.push(inner.leaves.tid_at(leaf.leaf_off()));
        }
        Some(pos) => {
            let mut level = path.len() - 1;
            while level > 0 && inner.raw(path[level].0).min_position() as usize > pos {
                level -= 1;
            }
            for &(node, idx) in &path[..level] {
                frames.push((node, idx + 1));
            }
            let (target, idx) = path[level];
            let (lo, hi) = inner.raw(target).affected_range(pos, idx);
            let start = if hot_bits::bit_at(key.bytes(), pos) == 0 {
                lo
            } else {
                hi + 1
            };
            frames.push((target, start));
        }
    }
}

/// Drain a compact in-order frame stack until `out` holds `limit` TIDs,
/// prefetching one subtree ahead (mirrors `scan::drain_frames`; sibling
/// leaf records prefetch through their offsets too).
fn drain_frames(
    inner: &CompactInner,
    frames: &mut Vec<(CRef, usize)>,
    limit: usize,
    out: &mut Vec<u64>,
) {
    while out.len() < limit {
        let Some(&(node, idx)) = frames.last() else {
            break;
        };
        let raw = inner.raw(node);
        if idx >= raw.count() {
            frames.pop();
            continue;
        }
        frames.last_mut().expect("non-empty").1 += 1;
        let value = CRef(raw.cvalue(idx));
        if value.is_leaf() {
            out.push(inner.leaves.tid_at(value.leaf_off()));
        } else if value.is_node() {
            hot_bits::prefetch_node(inner.raw(value).base, PREFETCH_LINES);
            if idx + 1 < raw.count() {
                let sib = CRef(raw.cvalue(idx + 1));
                if sib.is_node() {
                    hot_bits::prefetch_node(inner.raw(sib).base, SIBLING_PREFETCH_LINES);
                } else if sib.is_leaf() {
                    inner.leaves.prefetch(sib.leaf_off());
                }
            }
            frames.push((value, 0));
        }
    }
}

/// Fixed group size of the compact batched-lookup pipeline (matches the
/// heap [`BatchCursor`](crate::BatchCursor) default).
const BATCH_GROUP: usize = 8;

/// Software-pipelined batched point lookups over the compact trie: G
/// descents advance round-robin one level per round, each hop prefetching
/// its lane's next node — or, on the last hop, the lane's inline leaf
/// record, so the verify phase finds both key suffix and TID cache-warm.
pub struct CompactBatchCursor {
    keys: Vec<PaddedKey>,
    lanes: Vec<CRef>,
}

impl Default for CompactBatchCursor {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactBatchCursor {
    /// A fresh cursor with the default group size.
    pub fn new() -> Self {
        CompactBatchCursor {
            keys: vec![PaddedKey::new(); BATCH_GROUP],
            lanes: vec![CRef::NULL; BATCH_GROUP],
        }
    }

    /// The pipeline group size.
    pub fn group(&self) -> usize {
        BATCH_GROUP
    }

    /// Answer one group of at most [`group`](Self::group) keys.
    pub(crate) fn run_group<K: AsRef<[u8]>>(
        &mut self,
        inner: &CompactInner,
        keys: &[K],
        out: &mut [Option<u64>],
    ) {
        let g = keys.len();
        debug_assert!(g <= BATCH_GROUP && out.len() == g);
        let root = inner.load_root();
        for (i, key) in keys.iter().enumerate() {
            self.keys[i].set(key.as_ref());
            self.lanes[i] = root;
        }
        if root.is_node() {
            hot_bits::prefetch_node(inner.raw(root).base, PREFETCH_LINES);
        }
        loop {
            let mut active = false;
            for i in 0..g {
                let cur = self.lanes[i];
                if !cur.is_node() {
                    continue;
                }
                active = true;
                let raw = inner.raw(cur);
                let idx = raw.search(raw.extract_dense(self.keys[i].padded()));
                let next = CRef(raw.cvalue(idx));
                if next.is_node() {
                    hot_bits::prefetch_node(inner.raw(next).base, PREFETCH_LINES);
                } else if next.is_leaf() {
                    inner.leaves.prefetch(next.leaf_off());
                }
                self.lanes[i] = next;
            }
            if !active {
                break;
            }
        }
        let mut buf = [0u8; MAX_KEY_LEN];
        for (i, slot) in out.iter_mut().enumerate().take(g) {
            let cur = self.lanes[i];
            *slot = if cur.is_leaf() {
                let off = cur.leaf_off();
                if inner.leaves.equals_key(off, self.keys[i].bytes(), &mut buf) {
                    Some(inner.leaves.tid_at(off))
                } else {
                    None
                }
            } else {
                None
            };
        }
    }
}

// ---- diagnostics ------------------------------------------------------------

impl CompactInner {
    /// Whole-trie invariant walk producing the same
    /// [`InvariantReport`](crate::InvariantReport) as the heap walker:
    /// fanout bounds, linearization well-formedness, SIMD-search
    /// self-consistency, strict height decrease, in-order key ordering,
    /// leaf count, and full re-lookup of every stored key through
    /// [`get_padded`](Self::get_padded).
    pub(crate) fn try_check_invariants(&self) -> Result<crate::InvariantReport, String> {
        let root = self.load_root();
        let expected_len = self.len();
        let mut report = crate::InvariantReport {
            nodes: 0,
            leaves: 0,
            height: 0,
            height_slack: 0,
            entries: 0,
            layout_census: [0; 9],
            leaf_depths: [0; crate::invariants::MAX_DEPTH_SLOTS],
        };
        if root.is_null() {
            if expected_len != 0 {
                return Err(format!("empty root but len is {expected_len}"));
            }
            return Ok(report);
        }
        let mut prev_key: Vec<u8> = Vec::new();
        let mut have_prev = false;
        let mut leaf_offs: Vec<u32> = Vec::with_capacity(expected_len);
        report.height =
            self.walk_invariants(root, 0, &mut prev_key, &mut have_prev, &mut leaf_offs, &mut report)?;
        if report.leaves != expected_len {
            return Err(format!(
                "leaf count {} does not match len {expected_len}",
                report.leaves
            ));
        }
        let mut buf = [0u8; MAX_KEY_LEN];
        let mut verify = [0u8; MAX_KEY_LEN];
        let mut padded = PaddedKey::new();
        for off in leaf_offs {
            let len = self.leaves.load_key_into(off, &mut buf);
            padded.set(&buf[..len]);
            let tid = self.leaves.tid_at(off);
            match self.get_padded(&padded, &mut verify) {
                Some(found) if found == tid => {}
                other => {
                    return Err(format!(
                        "stored key for tid {tid} resolves to {other:?} through \
                         the compact lookup path"
                    ));
                }
            }
        }
        Ok(report)
    }

    /// Check the subtree under `r`; returns its height (leaves are 0).
    #[allow(clippy::too_many_arguments)]
    fn walk_invariants(
        &self,
        r: CRef,
        depth: usize,
        prev_key: &mut Vec<u8>,
        have_prev: &mut bool,
        leaf_offs: &mut Vec<u32>,
        report: &mut crate::InvariantReport,
    ) -> Result<usize, String> {
        if r.is_null() {
            return Err(format!("null child reference at depth {depth}"));
        }
        if r.is_leaf() {
            let off = r.leaf_off();
            let mut buf = [0u8; MAX_KEY_LEN];
            let len = self.leaves.load_key_into(off, &mut buf);
            let key = &buf[..len];
            if *have_prev && prev_key.as_slice() >= key {
                return Err(format!(
                    "partition ordering violated: leaf at offset {off}, depth \
                     {depth} is not strictly greater than its in-order \
                     predecessor ({prev_key:?} >= {key:?})"
                ));
            }
            prev_key.clear();
            prev_key.extend_from_slice(key);
            *have_prev = true;
            leaf_offs.push(off);
            report.leaves += 1;
            report.leaf_depths[depth.min(crate::invariants::MAX_DEPTH_SLOTS - 1)] += 1;
            return Ok(0);
        }
        let raw = self.raw(r);
        let n = raw.count();
        let h = raw.height() as usize;
        let ctx =
            |what: &str| format!("compact node at depth {depth} (tag {:?}, n={n}, h={h}): {what}", raw.tag);
        if !(2..=MAX_FANOUT).contains(&n) {
            return Err(ctx("entry count outside 2..=32"));
        }
        if h < 1 {
            return Err(ctx("compound node with height 0"));
        }
        // Compact nodes never take the ROWEX lock; the header word must
        // still read zero (a quiesced plain read, not a protocol atomic).
        // SAFETY: the header is initialized and 4-byte aligned.
        let lock = unsafe { std::ptr::read(raw.base as *const u32) };
        if lock != 0 {
            return Err(ctx("compact node lock word is not zero"));
        }
        let mut builder = Builder::empty();
        self.decode_compact_into(raw, &mut builder);
        builder
            .try_check_invariants()
            .map_err(|e| ctx(&format!("linearization invalid: {e}")))?;
        for i in 0..n {
            let found = raw.search(raw.sparse_key(i));
            if found != i {
                return Err(ctx(&format!(
                    "search(sparse_key({i})) returned {found}, not {i}"
                )));
            }
        }
        report.nodes += 1;
        report.entries += n;
        report.layout_census[raw.tag as usize] += 1;
        let mut max_child = 0usize;
        for i in 0..n {
            let ch = self.walk_invariants(
                CRef(raw.cvalue(i)),
                depth + 1,
                prev_key,
                have_prev,
                leaf_offs,
                report,
            )?;
            if ch >= h {
                return Err(ctx(&format!(
                    "entry {i}: child height {ch} >= node height {h}"
                )));
            }
            max_child = max_child.max(ch);
        }
        if h > 1 + max_child {
            report.height_slack += 1;
        }
        Ok(h)
    }

    /// Count of live nodes per physical layout.
    pub(crate) fn layout_census(&self) -> [usize; 9] {
        let mut census = [0usize; 9];
        fn walk(inner: &CompactInner, r: CRef, census: &mut [usize; 9]) {
            if r.is_node() {
                let raw = inner.raw(r);
                census[raw.tag as usize] += 1;
                for i in 0..raw.count() {
                    walk(inner, CRef(raw.cvalue(i)), census);
                }
            }
        }
        walk(self, self.load_root(), &mut census);
        census
    }

    /// Leaf-depth histogram.
    pub(crate) fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(inner: &CompactInner, r: CRef, depth: usize, stats: &mut DepthStats) {
            if r.is_leaf() {
                stats.record(depth);
            } else if r.is_node() {
                let raw = inner.raw(r);
                for i in 0..raw.count() {
                    walk(inner, CRef(raw.cvalue(i)), depth + 1, stats);
                }
            }
        }
        walk(self, self.load_root(), 0, &mut stats);
        stats
    }

    /// Structural fingerprint with the exact mixing of the heap
    /// [`structure_digest`](crate::HotTrie::structure_digest), so equal
    /// digests across backends mean structurally identical trees (tags,
    /// heights, positions, sparse keys, leaf TID order).
    pub(crate) fn structure_digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
        }
        fn walk(inner: &CompactInner, r: CRef, mut h: u64) -> u64 {
            if r.is_leaf() {
                return mix(h, inner.leaves.tid_at(r.leaf_off()) ^ 0xAAAA_AAAA);
            }
            if r.is_null() {
                return mix(h, 0x5555);
            }
            let raw = inner.raw(r);
            h = mix(h, raw.tag as u64);
            h = mix(h, raw.height() as u64);
            for p in raw.positions() {
                h = mix(h, p as u64);
            }
            for i in 0..raw.count() {
                h = mix(h, raw.sparse_key(i) as u64);
                h = walk(inner, CRef(raw.cvalue(i)), h);
            }
            h
        }
        walk(self, self.load_root(), 0xcbf2_9ce4_8422_2325)
    }

    /// Allocator-level accounting for both arenas.
    pub(crate) fn arena_stats(&self) -> ArenaStats {
        let nodes = self.nodes.state.lock().expect("node arena poisoned");
        let leaves = self.leaves.state.lock().expect("leaf arena poisoned");
        ArenaStats {
            node_capacity_bytes: nodes.slab_count * SLAB_BYTES,
            node_live_bytes: nodes.live_bytes,
            node_live_count: nodes.live_nodes,
            node_hwm_bytes: nodes.hwm_bytes,
            leaf_capacity_bytes: leaves.slab_count * SLAB_BYTES,
            leaf_tail_bytes: leaves.tail as usize,
            leaf_dead_bytes: leaves.dead_bytes,
            leaf_records: leaves.records,
        }
    }

    /// Index memory footprint in [`MemoryStats`] terms: live node bytes,
    /// live leaf-record bytes as `aux_bytes` (the compact backend stores
    /// its keys inline), and the arenas' reserved slab memory as
    /// `capacity_bytes`.
    pub(crate) fn memory_stats(&self) -> MemoryStats {
        let stats = self.arena_stats();
        MemoryStats {
            node_bytes: stats.node_live_bytes,
            node_count: stats.node_live_count,
            aux_bytes: stats.leaf_tail_bytes - stats.leaf_dead_bytes,
            key_count: self.len(),
            capacity_bytes: stats.capacity_bytes(),
        }
    }
}

// ---- mutation choreography --------------------------------------------------

/// Run one insert with the fresh/retired protocol: on success the replaced
/// nodes are left in `s.retired` for the caller to reclaim (immediately for
/// the single-threaded wrapper, epoch-deferred for the concurrent one); on
/// [`ArenaFull`] every unpublished allocation is rolled back and the tree
/// is untouched.
pub(crate) fn insert_op(
    inner: &CompactInner,
    s: &mut CompactScratch,
    key: &PaddedKey,
    tid: u64,
) -> Result<Option<u64>, ArenaFull> {
    s.fresh.clear();
    s.retired.clear();
    s.fresh_leaf = None;
    match inner.insert_inner(s, key, tid) {
        Ok(prev) => {
            s.fresh.clear();
            s.fresh_leaf = None;
            Ok(prev)
        }
        Err(e) => {
            for r in s.fresh.drain(..) {
                inner.free_node(r);
            }
            if let Some(off) = s.fresh_leaf.take() {
                inner.leaves.mark_dead(off);
            }
            s.retired.clear();
            Err(e)
        }
    }
}

/// Run one remove with the same protocol as [`insert_op`].
pub(crate) fn remove_op(
    inner: &CompactInner,
    s: &mut CompactScratch,
    key: &PaddedKey,
) -> Result<Option<u64>, ArenaFull> {
    s.fresh.clear();
    s.retired.clear();
    s.fresh_leaf = None;
    match inner.remove_inner(s, key) {
        Ok(prev) => {
            s.fresh.clear();
            s.fresh_leaf = None;
            Ok(prev)
        }
        Err(e) => {
            for r in s.fresh.drain(..) {
                inner.free_node(r);
            }
            if let Some(off) = s.fresh_leaf.take() {
                inner.leaves.mark_dead(off);
            }
            s.retired.clear();
            Err(e)
        }
    }
}

// ---- public single-threaded facade ------------------------------------------

/// Arena-backed HOT trie: nodes and front-coded leaf records live in slab
/// arenas addressed by 32-bit [`CRef`] offset words, so child arrays are
/// half the size of the heap backend's and the final descent hop lands on
/// the key bytes it must verify.
///
/// The API mirrors [`HotTrie`](crate::HotTrie); results are byte-identical
/// (asserted by the differential suite via [`structure_digest`]
/// (Self::structure_digest) equality). The heap backend remains the
/// oracle — this backend trades its external `KeySource` for inline
/// records and 32-bit references to cut bytes/key.
pub struct CompactHot {
    inner: CompactInner,
    scratch: CompactScratch,
}

impl Default for CompactHot {
    fn default() -> Self {
        Self::new()
    }
}

impl CompactHot {
    /// An empty compact trie with the default arena ceilings (the full
    /// 32-bit addressable range; slabs are committed on demand).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_NODE_CAP, DEFAULT_LEAF_CAP)
    }

    /// An empty compact trie whose arenas refuse to grow past the given
    /// byte ceilings (rounded up to whole slabs). Mutations that would
    /// exceed a ceiling fail with a typed [`ArenaFull`]; useful for tests
    /// and for bounding index memory in embedding systems.
    pub fn with_capacity(node_cap_bytes: usize, leaf_cap_bytes: usize) -> Self {
        CompactHot {
            inner: CompactInner::new(node_cap_bytes, leaf_cap_bytes),
            scratch: CompactScratch::new(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Overall tree height in compound nodes (0 for empty or single-leaf
    /// trees).
    pub fn height(&self) -> usize {
        let root = self.inner.load_root();
        if root.is_node() {
            self.inner.raw(root).height() as usize
        } else {
            0
        }
    }

    /// Look up `key`; returns its TID if present. One descent over
    /// offset-word children plus an inline front-coded verify.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let padded = PaddedKey::from_key(key);
        let mut buf = [0u8; MAX_KEY_LEN];
        self.inner.get_padded(&padded, &mut buf)
    }

    /// Like [`get`](Self::get) with a caller-provided padded-key buffer.
    pub fn get_with(&self, key: &[u8], buf: &mut PaddedKey) -> Option<u64> {
        buf.set(key);
        let mut kb = [0u8; MAX_KEY_LEN];
        self.inner.get_padded(buf, &mut kb)
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Batched point lookups through a fresh pipeline cursor (see
    /// [`get_batch_with`](Self::get_batch_with) to amortize the cursor).
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    pub fn get_batch<K: AsRef<[u8]>>(&self, keys: &[K], out: &mut [Option<u64>]) {
        let mut cursor = CompactBatchCursor::new();
        self.get_batch_with(&mut cursor, keys, out);
    }

    /// Batched point lookups with a caller-owned [`CompactBatchCursor`]:
    /// lookups advance in software-pipelined groups so independent descent
    /// hops overlap their cache misses.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    pub fn get_batch_with<K: AsRef<[u8]>>(
        &self,
        cursor: &mut CompactBatchCursor,
        keys: &[K],
        out: &mut [Option<u64>],
    ) {
        assert_eq!(keys.len(), out.len(), "output slice length mismatch");
        let g = cursor.group();
        for (kc, oc) in keys.chunks(g).zip(out.chunks_mut(g)) {
            cursor.run_group(&self.inner, kc, oc);
        }
    }

    /// Insert `key -> tid`; returns the previous TID on upsert.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`], the key exceeds
    /// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes, or an arena ceiling is
    /// hit (use [`try_insert`](Self::try_insert) to handle that case).
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        self.try_insert(key, tid)
            .unwrap_or_else(|e| panic!("compact insert: {e}"))
    }

    /// Insert `key -> tid`, reporting arena exhaustion as a typed error
    /// instead of panicking. On [`ArenaFull`] the tree is unchanged.
    ///
    /// # Panics
    /// Panics if `tid` exceeds [`MAX_TID`] or the key exceeds
    /// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes.
    pub fn try_insert(&mut self, key: &[u8], tid: u64) -> Result<Option<u64>, ArenaFull> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        let mut key_buf = self.scratch.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = insert_op(&self.inner, &mut self.scratch, &key_buf, tid);
        self.scratch.key_buf = Some(key_buf);
        if result.is_ok() {
            for r in self.scratch.retired.drain(..) {
                self.inner.free_node(r);
            }
        }
        result
    }

    /// Remove `key`; returns its TID if it was present.
    ///
    /// # Panics
    /// Panics if an arena ceiling is hit while re-encoding a merged node
    /// (use [`try_remove`](Self::try_remove) to handle that case).
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        self.try_remove(key)
            .unwrap_or_else(|e| panic!("compact remove: {e}"))
    }

    /// Remove `key`, reporting arena exhaustion as a typed error. On
    /// [`ArenaFull`] the tree is unchanged.
    pub fn try_remove(&mut self, key: &[u8]) -> Result<Option<u64>, ArenaFull> {
        let mut key_buf = self.scratch.key_buf.take().unwrap_or_default();
        key_buf.set(key);
        let result = remove_op(&self.inner, &mut self.scratch, &key_buf);
        self.scratch.key_buf = Some(key_buf);
        if result.is_ok() {
            for r in self.scratch.retired.drain(..) {
                self.inner.free_node(r);
            }
        }
        result
    }

    /// Bulk-load sorted `(key, tid)` pairs into an empty trie: records are
    /// appended in key order (maximal front-coding), then nodes are built
    /// bottom-up with the heap loader's exact partitioning. Returns the
    /// number of keys loaded (duplicates collapse last-write-wins).
    ///
    /// # Panics
    /// Panics if an arena ceiling is hit mid-build (no rollback for a
    /// half-built subtree).
    pub fn bulk_load<K: AsRef<[u8]>>(
        &mut self,
        entries: &[(K, u64)],
    ) -> Result<usize, BulkLoadError> {
        if !self.inner.load_root().is_null() {
            return Err(BulkLoadError::NotEmpty);
        }
        self.inner.bulk_inner(entries)
    }

    /// Iterator over all TIDs in ascending key order.
    pub fn iter(&self) -> CompactCursor<'_> {
        self.inner.iter()
    }

    /// Iterator over TIDs whose keys are `>= key`, ascending.
    pub fn range_from(&self, key: &[u8]) -> CompactCursor<'_> {
        self.inner.range_from(key)
    }

    /// Collect up to `limit` TIDs with keys `>= key`, in ascending key
    /// order.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(limit.min(1024));
        self.scan_into(key, limit, &mut out);
        out
    }

    /// Like [`scan`](Self::scan) into a caller buffer (cleared first).
    pub fn scan_into(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) {
        let mut cursor = CompactScanCursor::new();
        self.scan_with(&mut cursor, key, limit, out);
    }

    /// Like [`scan`](Self::scan) with a caller-owned reusable cursor
    /// (`out` is cleared first): steady-state scans allocate nothing.
    pub fn scan_with(
        &self,
        cursor: &mut CompactScanCursor,
        key: &[u8],
        limit: usize,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        cursor.scan_root(&self.inner, key, limit, out);
    }

    /// Index memory footprint (live bytes plus reserved arena capacity).
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.memory_stats()
    }

    /// Allocator-level accounting for both arenas (capacity, live bytes,
    /// high-water mark, dead front-coded bytes).
    pub fn arena_stats(&self) -> ArenaStats {
        self.inner.arena_stats()
    }

    /// Leaf-depth histogram.
    pub fn depth_stats(&self) -> DepthStats {
        self.inner.depth_stats()
    }

    /// Count of live nodes per physical layout.
    pub fn layout_census(&self) -> [usize; 9] {
        self.inner.layout_census()
    }

    /// Structural fingerprint; equal to the heap backend's
    /// [`structure_digest`](crate::HotTrie::structure_digest) for the same
    /// key set.
    pub fn structure_digest(&self) -> u64 {
        self.inner.structure_digest()
    }

    /// Whole-trie invariant walk; see
    /// [`HotTrie::try_check_invariants`](crate::HotTrie::try_check_invariants).
    pub fn try_check_invariants(&self) -> Result<crate::InvariantReport, String> {
        self.inner.try_check_invariants()
    }

    /// Like [`try_check_invariants`](Self::try_check_invariants) but
    /// panics on violation.
    pub fn check_invariants(&self) -> crate::InvariantReport {
        match self.inner.try_check_invariants() {
            Ok(report) => report,
            Err(e) => panic!("compact invariant violation: {e}"),
        }
    }
}

impl<'a> IntoIterator for &'a CompactHot {
    type Item = u64;
    type IntoIter = CompactCursor<'a>;

    fn into_iter(self) -> CompactCursor<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cref_encoding_round_trip() {
        assert!(CRef::NULL.is_null());
        assert!(!CRef::NULL.is_leaf());
        assert!(!CRef::NULL.is_node());
        for off in [0u32, 1, 4005, (LEAF_BYTE_LIMIT - 1) as u32] {
            let r = CRef::leaf(off);
            assert!(r.is_leaf() && !r.is_node() && !r.is_null());
            assert_eq!(r.leaf_off(), off);
        }
        for units in [1u32, 2, 255, NODE_UNIT_LIMIT - 1] {
            for tag in 0..9u8 {
                let tag = NodeTag::from_u8(tag);
                let r = CRef::node(units, tag);
                assert!(r.is_node() && !r.is_leaf() && !r.is_null());
                assert_eq!(r.units(), units);
                assert_eq!(r.tag(), tag);
            }
        }
    }

    #[test]
    fn varint_tid_round_trip_at_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            (1 << 21) - 1,
            1 << 21,
            (1 << 28) - 1,
            1 << 28,
            u32::MAX as u64,
            (1 << 56) - 1,
            1 << 56,
            u64::MAX,
        ];
        let mut buf = [0u8; 16];
        for &v in &cases {
            let want = varint_len(v);
            assert!((1..=10).contains(&want), "len {want} for {v}");
            // SAFETY: `buf` is 16 bytes, comfortably above the 10-byte max.
            let wrote = unsafe { write_varint(buf.as_mut_ptr(), v) };
            assert_eq!(wrote, want, "write_varint vs varint_len for {v}");
            // SAFETY: `buf` holds the value just written.
            assert_eq!(unsafe { read_varint(buf.as_ptr()) }, v);
            // SAFETY: `buf` holds the value just written.
            assert_eq!(unsafe { varint_len_at(buf.as_ptr()) }, want);
        }
        // Length must be monotonically non-decreasing in the value.
        for w in cases.windows(2) {
            assert!(varint_len(w[0]) <= varint_len(w[1]));
        }
    }

    #[test]
    fn large_tids_survive_front_coded_records() {
        let arena = LeafArena::new(DEFAULT_LEAF_CAP);
        // Chain of front-coded siblings with TIDs spanning every varint width.
        let tids = [0u64, 127, 128, 16_384, u32::MAX as u64, 1 << 56, MAX_TID];
        let offs: Vec<u32> = tids
            .iter()
            .enumerate()
            .map(|(i, &tid)| {
                let mut k = b"shared/prefix/for/front/coding/".to_vec();
                k.extend_from_slice(format!("{i:04}").as_bytes());
                arena.append(&k, tid).expect("append")
            })
            .collect();
        let mut buf = [0u8; MAX_KEY_LEN];
        for (i, (&tid, &off)) in tids.iter().zip(&offs).enumerate() {
            assert_eq!(arena.tid_at(off), tid, "tid {i}");
            let len = arena.load_key_into(off, &mut buf);
            let mut want = b"shared/prefix/for/front/coding/".to_vec();
            want.extend_from_slice(format!("{i:04}").as_bytes());
            assert_eq!(&buf[..len], want.as_slice(), "key walk across varint record {i}");
        }
        // mark_dead must account the true varint-sized record length:
        // the MAX_TID record carries a 10-byte varint, not a fixed 8.
        let before = arena.state.lock().expect("leaf arena").dead_bytes;
        arena.mark_dead(offs[tids.len() - 1]);
        let grew = arena.state.lock().expect("leaf arena").dead_bytes - before;
        assert!(grew >= LEAF_HEADER + varint_len(MAX_TID), "grew {grew}");
    }

    #[test]
    fn front_coding_round_trip() {
        let arena = LeafArena::new(DEFAULT_LEAF_CAP);
        let keys: Vec<Vec<u8>> = (0..500u32)
            .map(|i| {
                let mut k = b"http://example.com/path/".to_vec();
                k.extend_from_slice(format!("{i:08}").as_bytes());
                k
            })
            .collect();
        let offs: Vec<u32> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| arena.append(k, i as u64).expect("append"))
            .collect();
        let mut buf = [0u8; MAX_KEY_LEN];
        let mut scratch = [0u8; MAX_KEY_LEN];
        for (i, (k, &off)) in keys.iter().zip(&offs).enumerate() {
            let len = arena.load_key_into(off, &mut buf);
            assert_eq!(&buf[..len], k.as_slice(), "key {i} reconstruction");
            assert_eq!(arena.tid_at(off), i as u64);
            assert!(arena.equals_key(off, k, &mut scratch));
            assert!(!arena.equals_key(off, b"http://example.com/zzz", &mut scratch));
            let mut short = k.clone();
            short.pop();
            assert!(!arena.equals_key(off, &short, &mut scratch));
        }
    }

    #[test]
    fn front_coding_empty_and_boundary_keys() {
        let arena = LeafArena::new(DEFAULT_LEAF_CAP);
        // Empty key, then a key that is a pure extension, then a sibling
        // sharing every byte but the last.
        let cases: [&[u8]; 4] = [b"", b"a", b"ab", b"ac"];
        let offs: Vec<u32> = cases
            .iter()
            .enumerate()
            .map(|(i, k)| arena.append(k, 100 + i as u64).expect("append"))
            .collect();
        let mut buf = [0u8; MAX_KEY_LEN];
        for (i, (k, &off)) in cases.iter().zip(&offs).enumerate() {
            let len = arena.load_key_into(off, &mut buf);
            assert_eq!(&buf[..len], *k);
            assert_eq!(arena.tid_at(off), 100 + i as u64);
        }
    }

    #[test]
    fn compact_basic_ops() {
        let mut trie = CompactHot::new();
        assert!(trie.is_empty());
        assert_eq!(trie.get(b"missing"), None);
        for i in 0..2000u64 {
            let key = format!("key-{i:06}");
            assert_eq!(trie.insert(key.as_bytes(), i), None);
        }
        assert_eq!(trie.len(), 2000);
        for i in 0..2000u64 {
            let key = format!("key-{i:06}");
            assert_eq!(trie.get(key.as_bytes()), Some(i), "{key}");
        }
        // Upserts return the previous TID and keep len stable.
        assert_eq!(trie.insert(b"key-000007", 9999), Some(7));
        assert_eq!(trie.get(b"key-000007"), Some(9999));
        assert_eq!(trie.len(), 2000);
        trie.check_invariants();
        let collected: Vec<u64> = trie.iter().collect();
        assert_eq!(collected.len(), 2000);
        assert!(collected.windows(2).all(|w| {
            let a = if w[0] == 9999 { 7 } else { w[0] };
            let b = if w[1] == 9999 { 7 } else { w[1] };
            a < b
        }));
        // Removals.
        for i in (0..2000u64).step_by(3) {
            let key = format!("key-{i:06}");
            let expect = if i == 7 { 9999 } else { i };
            assert_eq!(trie.remove(key.as_bytes()), Some(expect), "{key}");
        }
        assert_eq!(trie.len(), 2000 - 2000_usize.div_ceil(3));
        for i in 0..2000u64 {
            let key = format!("key-{i:06}");
            let got = trie.get(key.as_bytes());
            if i % 3 == 0 {
                assert_eq!(got, None);
            } else if i == 7 {
                assert_eq!(got, Some(9999));
            } else {
                assert_eq!(got, Some(i));
            }
        }
        trie.check_invariants();
    }

    #[test]
    fn node_arena_exhaustion_is_typed_and_rolls_back() {
        // A one-slab node ceiling fills quickly; the failing insert must
        // leave the tree readable and structurally unchanged.
        let mut trie = CompactHot::with_capacity(SLAB_BYTES, DEFAULT_LEAF_CAP);
        let mut inserted = 0u64;
        let err = loop {
            let key = format!("key-{inserted:08}");
            match trie.try_insert(key.as_bytes(), inserted) {
                Ok(None) => inserted += 1,
                Ok(Some(_)) => panic!("unexpected upsert"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind, ArenaKind::Node);
        assert!(inserted > 0);
        // The failing insert rolled back completely: len unchanged, every
        // key still readable, invariants intact. (Rolled-back blocks land
        // on the free list, so a *later* insert may legitimately succeed.)
        assert_eq!(trie.len(), inserted as usize);
        for i in 0..inserted {
            let key = format!("key-{i:08}");
            assert_eq!(trie.get(key.as_bytes()), Some(i));
        }
        trie.check_invariants();
        // Removal frees node blocks, making room again.
        let victim = format!("key-{:08}", 0);
        assert_eq!(trie.remove(victim.as_bytes()), Some(0));
        assert!(trie.try_insert(victim.as_bytes(), 0).is_ok());
    }

    #[test]
    fn leaf_arena_exhaustion_is_typed() {
        let mut trie = CompactHot::with_capacity(DEFAULT_NODE_CAP, SLAB_BYTES);
        let mut inserted = 0u64;
        let err = loop {
            // Long, shared-prefix-free keys to burn leaf bytes fast.
            let key = format!("{:032x}-{}", inserted.wrapping_mul(0x9E37_79B9_7F4A_7C15), "x".repeat(180));
            match trie.try_insert(key.as_bytes(), inserted) {
                Ok(_) => inserted += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind, ArenaKind::Leaf);
        assert_eq!(trie.len(), inserted as usize);
        trie.check_invariants();
    }

    #[test]
    fn compact_bulk_matches_incremental() {
        let keys: Vec<Vec<u8>> = (0..3000u32)
            .map(|i| format!("bulk/{:06}", i * 7 % 3000).into_bytes())
            .collect();
        let mut sorted: Vec<(Vec<u8>, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u64))
            .collect();
        sorted.sort();
        let mut bulk = CompactHot::new();
        let n = bulk.bulk_load(&sorted).expect("bulk load");
        assert_eq!(n, 3000);
        let mut incr = CompactHot::new();
        for (k, v) in &sorted {
            incr.insert(k, *v);
        }
        assert_eq!(bulk.structure_digest(), incr.structure_digest());
        bulk.check_invariants();
        for (k, v) in &sorted {
            assert_eq!(bulk.get(k), Some(*v));
        }
        assert!(bulk.bulk_load(&sorted).is_err(), "NotEmpty expected");
    }

    #[test]
    fn compact_scan_and_range() {
        let mut trie = CompactHot::new();
        for i in 0..512u64 {
            trie.insert(format!("scan:{i:04}").as_bytes(), i);
        }
        let hits = trie.scan(b"scan:0100", 10);
        assert_eq!(hits, (100..110).collect::<Vec<u64>>());
        let from: Vec<u64> = trie.range_from(b"scan:0500").collect();
        assert_eq!(from, (500..512).collect::<Vec<u64>>());
        // Between-keys start position.
        let between = trie.scan(b"scan:00995", 3);
        assert_eq!(between, vec![100, 101, 102]);
        let mut batch_out = vec![None; 512];
        let batch_keys: Vec<String> = (0..512).map(|i| format!("scan:{i:04}")).collect();
        trie.get_batch(&batch_keys, &mut batch_out);
        for (i, r) in batch_out.iter().enumerate() {
            assert_eq!(*r, Some(i as u64));
        }
    }
}
