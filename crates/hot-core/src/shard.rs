//! Thread-per-core sharded execution layer (DESIGN.md §17).
//!
//! [`ShardedHot`] range-partitions the order-preserving key encoding
//! across per-shard [`ConcurrentHot`] instances and routes batched work
//! to them through a small deterministic router:
//!
//! * **Partitioning** is by *splitter keys*: `N - 1` sorted byte
//!   strings drawn from the data (the equal-count quantiles of a bulk
//!   load, or a caller-provided sample via [`splitters_from_sample`])
//!   divide the key space into `N` contiguous lexicographic ranges,
//!   shard `s` owning `[splitter[s-1], splitter[s])`. Data-derived
//!   splitters are essential: real key sets share long common prefixes
//!   (every URL starts `https://`, every integer key has zero high
//!   bytes), so any fixed prefix partition collapses onto one shard —
//!   quantile splitters stay balanced on exactly those distributions.
//!   Contiguous ranges also mean a cross-shard range scan is the plain
//!   concatenation of per-shard scans, no merge network needed.
//! * **The batch router** splits `get_batch` / `scan_batch` /
//!   `mixed_batch` / `remove_batch` requests by shard, feeds each
//!   shard's gathered slice through the existing completion-driven
//!   [`MlpScheduler`](crate::MlpScheduler) (on the shard's worker
//!   thread, or inline when the router runs without workers), and
//!   re-emits every result **in request order** — the same
//!   reorder-buffer discipline the out-of-order scheduler itself uses
//!   (DESIGN.md §14). Output is therefore byte-identical to a single
//!   trie regardless of shard count, worker timing, or pinning.
//! * **Placement** is first-touch: each shard's worker thread is pinned
//!   to one core ([`crate::numa`]), and because that worker performs the
//!   shard's inserts and bulk loads, the shard's nodes are allocated —
//!   hence first-touched — on the core's local NUMA node. `HOT_PIN=0`
//!   disables pinning, `HOT_SHARDS` overrides the default shard count
//!   (both mirror the `HOT_MLP_DEPTH` escape-hatch convention).
//!
//! Scalar operations (`get` / `insert` / `remove` / `scan`) route
//! inline on the caller: a single descent has no batch to amortize a
//! hand-off against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use hot_keys::stats::MemoryStats;
use hot_keys::{KeySource, PaddedKey, KEY_SCRATCH_LEN};

use crossbeam_epoch as epoch;

use crate::bulk::BulkLoadError;
use crate::metrics::{OpKind, RowexCounter};
use crate::mlp::{BatchRequest, DescentKind, MlpScheduler, RequestStream, ScanStream};
use crate::numa;
use crate::sync::ConcurrentHot;

/// Largest supported shard count.
pub const MAX_SHARDS: usize = 64;

/// Resumable scan position for callers that cannot hold a cursor across
/// calls (the wire protocol pages SCAN results with it; DESIGN.md §18).
/// It names the last key a page returned plus the shard that owned it
/// when the token was minted, and is honored by
/// [`ShardedHot::scan_resume`] even if that key is deleted — or the
/// splitter layout would place it elsewhere — between pages: resumption
/// re-routes by key, the shard index is a routing hint for the wire
/// format, not a correctness input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanToken {
    /// Shard that owned `last_key` when the page was produced.
    pub shard: u32,
    /// The last key of the previous page; the next page starts strictly
    /// after it.
    pub last_key: Vec<u8>,
}

/// The shard owning `key` under sorted `splitters`: the number of
/// splitters `<= key`, i.e. shard `s` owns the contiguous lexicographic
/// range `[splitter[s-1], splitter[s])` (shard 0 is unbounded below,
/// the last shard unbounded above). With no splitters every key maps to
/// shard 0 — routing is always *correct*, splitters only buy balance.
#[inline]
pub fn shard_of_key(key: &[u8], splitters: &[Vec<u8>]) -> usize {
    splitters.partition_point(|s| s.as_slice() <= key)
}

/// Equal-count quantile splitters for `shards` ranges from a **sorted,
/// deduplicated** sample of the key population: `shards - 1` keys at
/// positions `s·len/shards`, each **truncated** to the shortest prefix
/// that still separates it from its predecessor (the B-tree separator
/// trick — a splitter is a range boundary, not a stored key, so the
/// short form routes identically while keeping splitter compares cheap),
/// then deduplicated (skewed samples can repeat a quantile; duplicate
/// splitters would create permanently empty shards while a shorter
/// splitter list keeps every range non-degenerate).
pub fn splitters_from_sample(sample: &[&[u8]], shards: usize) -> Vec<Vec<u8>> {
    let shards = shards.clamp(1, MAX_SHARDS);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(shards.saturating_sub(1));
    if sample.is_empty() {
        return out;
    }
    for s in 1..shards {
        let idx = s * sample.len() / shards;
        let k = sample[idx];
        // Shortest prefix of `k` strictly greater than its predecessor:
        // everything through the first differing byte. Any separator in
        // `(pred, k]` partitions the sample identically.
        let sep = if idx == 0 {
            k
        } else {
            let pred = sample[idx - 1];
            let j = pred.iter().zip(k).take_while(|(a, b)| a == b).count();
            &k[..(j + 1).min(k.len())]
        };
        if out.last().map(Vec::as_slice) != Some(sep) {
            out.push(sep.to_vec());
        }
    }
    out
}

/// A compiled partition: the splitter list plus a classification trie
/// that routes without re-comparing shared bytes. Each trie node checks
/// the bytes all of its splitters share *once*, then branches on the
/// next 8-byte word — so classifying a key inspects each of its
/// distinguishing prefix bytes at most once, no matter how deep the
/// splitters' common prefixes run. This matters: a plain byte-wise
/// binary search over splitters that share long prefixes (URLs all
/// starting `https://<one of few hosts>/`…) re-walks those prefixes on
/// every probe and costs a significant fraction of a whole trie descent
/// per key.
struct Partition {
    /// Sorted splitter keys (the authoritative partition).
    splitters: Vec<Vec<u8>>,
    /// Classification trie root (`None` iff `splitters` is empty).
    root: Option<PartNode>,
    /// Bytes all splitters share — the flat fast path verifies them
    /// once per key.
    prefix: Vec<u8>,
    /// Zero-padded 8-byte splitter word right after `prefix`, one per
    /// splitter: the flat fast path's discriminants, compared
    /// *branchlessly* so a classify loop over cold keys keeps many
    /// misses in flight (a data-dependent branch per key would
    /// serialize them on every misprediction).
    words: Vec<u64>,
}

/// One node of the classification trie, covering the sorted splitter
/// range `[lo, hi)`. Keys reaching it are known to match the covered
/// splitters' common prefix up to `base`.
struct PartNode {
    /// First covered splitter index — also the answer when the key
    /// compares below every covered splitter.
    lo: usize,
    /// One past the last covered splitter — the answer when the key
    /// compares at-or-above every covered splitter.
    hi: usize,
    /// Offset at which `check` begins.
    base: usize,
    /// Bytes beyond `base` shared by all covered splitters; compared
    /// against the key once, a mismatch resolves to `lo`/`hi` outright.
    check: Vec<u8>,
    /// Non-decreasing discriminants: the zero-padded 8-byte splitter
    /// word right after `check`, one per entry. Padding can tie with
    /// real zero bytes; ties are resolved through the entries.
    discr: Vec<u64>,
    /// What each discriminant leads to: a single splitter (resolved by
    /// one suffix compare) or a subtree of splitters sharing the word.
    entries: Vec<PartEntry>,
}

enum PartEntry {
    /// A single splitter, by absolute index.
    Leaf(usize),
    /// Two or more splitters sharing their next full 8-byte word.
    Node(Box<PartNode>),
}

/// Big-endian zero-padded first-8-bytes word of `tail`. Padded-word
/// inequality implies the same lexicographic inequality of the tails;
/// only equality is ambiguous (a short tail pads with zeros a longer
/// tail may really contain).
#[inline]
fn pad8(tail: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    let m = tail.len().min(8);
    w[..m].copy_from_slice(&tail[..m]);
    u64::from_be_bytes(w)
}

impl PartNode {
    /// Build the subtree for sorted, distinct `splitters[lo..hi]`, all
    /// known to share their first `base` bytes.
    fn build(splitters: &[Vec<u8>], lo: usize, hi: usize, base: usize) -> PartNode {
        // Sorted range: the common prefix of all members is the common
        // prefix of the first and last.
        let (first, last) = (&splitters[lo], &splitters[hi - 1]);
        let shared = first[base..]
            .iter()
            .zip(&last[base..])
            .take_while(|(a, b)| a == b)
            .count();
        let check = first[base..base + shared].to_vec();
        let off = base + shared;
        let mut discr = Vec::new();
        let mut entries = Vec::new();
        let mut i = lo;
        while i < hi {
            let s = &splitters[i];
            discr.push(pad8(&s[off..]));
            if s.len() < off + 8 {
                // A short tail pads its word: the padding is not real
                // bytes, so it never groups (sorted order puts it before
                // any longer splitter sharing the same padded word).
                entries.push(PartEntry::Leaf(i));
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < hi
                && splitters[j].len() >= off + 8
                && splitters[j][off..off + 8] == s[off..off + 8]
            {
                j += 1;
            }
            entries.push(if j - i == 1 {
                PartEntry::Leaf(i)
            } else {
                // Members share ≥ 8 more real bytes: recursion advances
                // by at least a word per level and must terminate since
                // the splitters are distinct.
                PartEntry::Node(Box::new(PartNode::build(splitters, i, j, off + 8)))
            });
            i = j;
        }
        PartNode {
            lo,
            hi,
            base,
            check,
            discr,
            entries,
        }
    }

    /// Partition point of `key` within this node's covered range: the
    /// absolute count of splitters `<= key`, i.e. `lo..=hi`.
    fn resolve(&self, splitters: &[Vec<u8>], key: &[u8]) -> usize {
        let kc = key.get(self.base..).unwrap_or(&[]);
        let m = kc.len().min(self.check.len());
        match kc[..m].cmp(&self.check[..m]) {
            std::cmp::Ordering::Less => return self.lo,
            std::cmp::Ordering::Greater => return self.hi,
            std::cmp::Ordering::Equal => {
                if kc.len() < self.check.len() {
                    // Key is a proper prefix of the shared bytes: below
                    // every covered splitter.
                    return self.lo;
                }
            }
        }
        let off = self.base + self.check.len();
        let kd = pad8(key.get(off..).unwrap_or(&[]));
        let mut i = self.discr.partition_point(|&d| d < kd);
        // Entries left of `i` are strictly below the key; walk the
        // discriminant ties (usually zero or one) for an exact answer.
        while i < self.discr.len() && self.discr[i] == kd {
            match &self.entries[i] {
                PartEntry::Leaf(s) => {
                    if splitters[*s].as_slice() > key {
                        return *s;
                    }
                }
                PartEntry::Node(n) => {
                    let r = n.resolve(splitters, key);
                    if r < n.hi {
                        return r;
                    }
                }
            }
            i += 1;
        }
        match self.entries.get(i) {
            None => self.hi,
            Some(PartEntry::Leaf(s)) => *s,
            Some(PartEntry::Node(n)) => n.lo,
        }
    }
}

impl Partition {
    fn new(splitters: Vec<Vec<u8>>) -> Partition {
        let root = if splitters.is_empty() {
            None
        } else {
            Some(PartNode::build(&splitters, 0, splitters.len(), 0))
        };
        let (prefix, words) = if splitters.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            // Sorted: the common prefix of all splitters is that of the
            // first and last, and every splitter is at least that long
            // (a shorter middle splitter would be a proper prefix of it
            // and sort below the first).
            let (first, last) = (&splitters[0], &splitters[splitters.len() - 1]);
            let base = first.iter().zip(last.iter()).take_while(|(a, b)| a == b).count();
            (
                first[..base].to_vec(),
                splitters.iter().map(|s| pad8(&s[base..])).collect(),
            )
        };
        Partition {
            splitters,
            root,
            prefix,
            words,
        }
    }

    /// The shard owning `key`; agrees with [`shard_of_key`] on the full
    /// splitter list.
    #[inline]
    fn shard_of(&self, key: &[u8]) -> usize {
        let shard = self.classify_fast(key).unwrap_or_else(|| match &self.root {
            None => 0,
            Some(root) => root.resolve(&self.splitters, key),
        });
        debug_assert_eq!(shard, shard_of_key(key, &self.splitters));
        shard
    }

    /// Branchless flat fast path. A key diverging inside the splitters'
    /// shared prefix is *decisive*, not a fallback: every splitter
    /// carries the prefix, so a key below it sits below all splitters
    /// (shard 0) and a key above it sits above all of them (last
    /// shard). A key carrying the prefix is classified by one padded
    /// 8-byte word against every splitter's word in a fixed-trip
    /// compare loop with no data-dependent branches — strict word
    /// inequality implies the same lexicographic inequality, so the
    /// count of strictly-smaller words *is* the partition point.
    /// `None` (a word tie) falls back to the exact classification
    /// trie. Splitters separating keys that agree past the word (URL
    /// sets whose quantiles fall inside one host's range) tie
    /// constantly and take the trie; splitters whose first
    /// distinguishing word differs (integer keys, distinct hosts)
    /// resolve here ~always.
    #[inline]
    fn classify_fast(&self, key: &[u8]) -> Option<usize> {
        flat_classify(&self.prefix, &self.words, key)
    }

    /// Exact (trie-backed) classification, for keys the flat path
    /// cannot decide.
    #[inline]
    fn classify_slow(&self, key: &[u8]) -> usize {
        match &self.root {
            None => 0,
            Some(root) => root.resolve(&self.splitters, key),
        }
    }
}

/// Body of [`Partition::classify_fast`], over pre-hoisted classifier
/// state: the router's classify loop calls this on local slices so the
/// prefix/word pointers stay in registers across the whole batch
/// (re-loading them through `&Partition` per key measures ~2x slower
/// on integer keys).
#[inline(always)]
fn flat_classify(prefix: &[u8], words: &[u64], key: &[u8]) -> Option<usize> {
    let base = prefix.len();
    if base != 0 {
        let head = base.min(key.len());
        match key[..head].cmp(&prefix[..head]) {
            std::cmp::Ordering::Less => return Some(0),
            std::cmp::Ordering::Greater => return Some(words.len()),
            // A proper prefix of the shared bytes sorts below every
            // splitter.
            std::cmp::Ordering::Equal if head < base => return Some(0),
            std::cmp::Ordering::Equal => {}
        }
    }
    let kd = pad8(&key[base..]);
    let mut below = 0usize;
    let mut tie = false;
    for &w in words {
        below += usize::from(w < kd);
        tie |= w == kd;
    }
    (!tie).then_some(below)
}

/// How many requests ahead the router's classify loop prefetches key
/// bytes (matches the scheduler's in-flight descent budget).
const CLASSIFY_PF_AHEAD: usize = 16;

/// Scheduler window per shard-queue drain: long enough to amortize ring
/// ramp-up, short enough that the window's staging state stays cached.
const DRAIN_WINDOW: usize = 1024;

static ENV_SHARDS: OnceLock<Option<usize>> = OnceLock::new();

/// `HOT_SHARDS` override (clamped to `1..=`[`MAX_SHARDS`]), cached
/// process-wide like `HOT_MLP_DEPTH`.
pub fn env_shards() -> Option<usize> {
    *ENV_SHARDS.get_or_init(|| {
        std::env::var("HOT_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map(|n| n.clamp(1, MAX_SHARDS))
    })
}

/// A gathered raw key pointer. Plain `*const u8` is neither `Send` nor
/// `Sync`, which would poison every job closure; the newtype restores
/// both under the router's discipline.
#[derive(Clone, Copy)]
struct KeyPtr(*const u8);

// SAFETY: a gathered key pointer is only dereferenced by the single job
// its shard segment is handed to, while the dispatching call blocks on
// the completion latch keeping the pointee alive; moving/sharing the
// pointer *value* across threads carries no aliasing by itself.
unsafe impl Send for KeyPtr {}
// SAFETY: as above — jobs only read through the pointer.
unsafe impl Sync for KeyPtr {}

/// One gathered drain window as a request stream: the window's keys,
/// made contiguous by the gather pass, with a uniform request kind.
/// Feeding the ring *contiguous* keys matters: an earlier variant let
/// the ring index the caller's full key array through the queue's slot
/// list, and those strided loads (plus equally strided result stores)
/// inside the staging path cost ~50 ns/key more than the explicit
/// gather + scatter passes do — tight dedicated loops stream a fixed
/// stride; the same loads interleaved with ring traffic do not.
struct GatherStream<'a, 'k> {
    keys: &'a [&'k [u8]],
    kind: DescentKind,
}

impl RequestStream for GatherStream<'_, '_> {
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn fetch(&self, i: usize) -> (&[u8], DescentKind, usize) {
        (self.keys[i], self.kind, 0)
    }
}

/// Reusable per-worker execution state: the shard-affine out-of-order
/// scheduler ring plus request/result staging reused across batches.
///
/// The borrowed-slice buffers (`keys`, `scans`, `mixed`) hold
/// `'static`-laundered views of caller memory; every helper clears them
/// before returning so no reference outlives the dispatch that made it
/// valid.
struct WorkerCtx {
    sched: MlpScheduler,
    tids: Vec<u64>,
    bounds: Vec<usize>,
    keys: Vec<&'static [u8]>,
    scans: Vec<(&'static [u8], usize)>,
    mixed: Vec<BatchRequest<'static>>,
}

impl WorkerCtx {
    fn new() -> WorkerCtx {
        WorkerCtx {
            sched: MlpScheduler::new(),
            tids: Vec::new(),
            bounds: Vec::new(),
            keys: Vec::new(),
            scans: Vec::new(),
            mixed: Vec::new(),
        }
    }
}

/// One unit of routed work, executed on the target shard's worker (or
/// inline). Captures only `Arc`s, plain values, and raw-pointer slice
/// wrappers, so it is `'static` by construction; the dispatcher blocks
/// until every job of a batch completed before the borrowed buffers
/// behind those raw pointers go out of scope.
type Job = Box<dyn FnOnce(&mut WorkerCtx) + Send + 'static>;

/// Borrowed input slice smuggled into a `'static` job. The dispatcher
/// guarantees the pointee outlives the job (it blocks on the batch
/// latch), and jobs only read through it.
struct SharedSlice<T>(*const T, usize);

// SAFETY: the wrapper only moves the pointer to the worker thread; the
// dispatching call blocks until the job signalled completion, so the
// caller-owned pointee is live for the job's whole execution, and jobs
// only read (`T: Sync` makes shared cross-thread reads sound).
unsafe impl<T: Sync> Send for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    fn new(s: &[T]) -> SharedSlice<T> {
        SharedSlice(s.as_ptr(), s.len())
    }

    /// Reborrow the slice.
    ///
    /// # Safety
    /// The dispatching call must still be blocked on the batch latch
    /// (i.e. the original slice is live and unmoved).
    unsafe fn get<'a>(&self) -> &'a [T] {
        // SAFETY: caller upholds the latch-bounded lifetime contract
        // above; (ptr, len) came from a real slice in `new`.
        unsafe { std::slice::from_raw_parts(self.0, self.1) }
    }
}

/// Borrowed output slice smuggled into a `'static` job; every job of a
/// batch receives a *disjoint* segment, so workers never alias.
struct MutSlice<T>(*mut T, usize);

// SAFETY: segments handed to different jobs are disjoint (the router
// partitions one scratch buffer by shard), the dispatcher blocks until
// all jobs completed, and `T: Send` covers the cross-thread hand-off.
unsafe impl<T: Send> Send for MutSlice<T> {}

impl<T> MutSlice<T> {
    fn new(s: &mut [T]) -> MutSlice<T> {
        MutSlice(s.as_mut_ptr(), s.len())
    }

    /// Reborrow the slice mutably.
    ///
    /// # Safety
    /// The dispatching call must still be blocked on the batch latch,
    /// and no other job may hold an overlapping segment.
    unsafe fn get<'a>(&self) -> &'a mut [T] {
        // SAFETY: caller upholds the latch-bounded, disjoint-segment
        // contract above; (ptr, len) came from a real slice in `new`.
        unsafe { std::slice::from_raw_parts_mut(self.0, self.1) }
    }
}

/// Completion latch for one dispatched batch: counts outstanding jobs
/// and records whether any of them panicked (a poisoned worker must
/// surface as a caller panic, not a deadlock).
struct Latch {
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Latch {
    fn new(jobs: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new((jobs, false)),
            cv: Condvar::new(),
        })
    }

    fn finish(&self, ok: bool) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.0 -= 1;
        st.1 |= !ok;
        if st.0 == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().expect("latch poisoned");
        while st.0 > 0 {
            st = self.cv.wait(st).expect("latch poisoned");
        }
        assert!(!st.1, "a shard worker panicked while servicing a batch");
    }
}

/// One shard-affine worker: a pinned thread draining jobs in FIFO order
/// with a persistent [`WorkerCtx`] (its scheduler ring and staging
/// buffers amortize across every batch the shard ever serves).
struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// Reusable router state for one caller of the sharded batch entry
/// points: classification, gather/scatter and scan-staging buffers plus
/// the inline-mode execution context. Mirrors the
/// `BatchCursor`/`MlpScheduler` caller-owned-state idiom: hold one per
/// driving thread and the router allocates nothing once warmed up.
pub struct RouterScratch {
    /// Shard id per request.
    shard_ids: Vec<u32>,
    /// Scratch reused as the per-shard gather cursor.
    counts: Vec<usize>,
    /// Per-shard start offsets into the grouped order (`shards + 1`).
    starts: Vec<usize>,
    /// Request indices grouped by shard, original order within a shard.
    order: Vec<u32>,
    /// Position of each request within its shard's group.
    pos: Vec<u32>,
    /// Gathered key pointers, grouped by shard.
    keys: Vec<KeyPtr>,
    /// Gathered key lengths, grouped by shard.
    key_lens: Vec<usize>,
    /// Gathered per-request values (insert TIDs / scan limits).
    vals: Vec<u64>,
    /// Gathered result slots, grouped by shard.
    outs: Vec<Option<u64>>,
    /// Flat scan-TID staging area, one disjoint segment per shard.
    stage: Vec<u64>,
    /// Per-shard segment starts into `stage` (`shards + 1`).
    seg_starts: Vec<usize>,
    /// TIDs produced per gathered request (scans; gets stay 0).
    req_counts: Vec<usize>,
    /// Absolute `stage` offset per gathered request.
    req_offs: Vec<usize>,
    /// Cross-shard scan continuation buffer.
    cont: Vec<u64>,
    /// Shard-affine drain queues for the inline grouped paths (one per
    /// shard, holding original batch slots in ascending order).
    queues: Vec<Vec<u32>>,
    /// Inline-mode execution state (used when the router runs without
    /// worker threads).
    ctx: WorkerCtx,
}

impl Default for RouterScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterScratch {
    /// Fresh scratch; buffers are allocated lazily on first use.
    pub fn new() -> RouterScratch {
        RouterScratch {
            shard_ids: Vec::new(),
            counts: Vec::new(),
            starts: Vec::new(),
            order: Vec::new(),
            pos: Vec::new(),
            keys: Vec::new(),
            key_lens: Vec::new(),
            vals: Vec::new(),
            outs: Vec::new(),
            stage: Vec::new(),
            seg_starts: Vec::new(),
            req_counts: Vec::new(),
            req_offs: Vec::new(),
            cont: Vec::new(),
            queues: Vec::new(),
            ctx: WorkerCtx::new(),
        }
    }

    /// Classify `n` requests by shard and build the grouped permutation:
    /// after this, `order[starts[s]..starts[s + 1]]` lists the request
    /// indices owned by shard `s` in request order, and request `i` sits
    /// at group position `pos[i]`. Allocation-free once warmed up.
    ///
    /// The classify loop is prefetch-pipelined like the scheduler's
    /// descent ring: each request's key bytes are requested
    /// [`CLASSIFY_PF_AHEAD`] iterations early, so the (cold) first key
    /// line arrives by the time the splitter compare needs it. Without
    /// this the router pays one *serial* memory miss per key — several
    /// times the cost of the compare itself.
    fn split<'k>(
        &mut self,
        shards: usize,
        n: usize,
        key_of: impl Fn(usize) -> &'k [u8],
        mut shard_of: impl FnMut(&[u8]) -> usize,
    ) {
        self.shard_ids.clear();
        self.counts.clear();
        self.counts.resize(shards, 0);
        for i in 0..n {
            if i + CLASSIFY_PF_AHEAD < n {
                hot_bits::prefetch_node(key_of(i + CLASSIFY_PF_AHEAD).as_ptr(), 1);
            }
            let s = shard_of(key_of(i));
            self.shard_ids.push(s as u32);
            self.counts[s] += 1;
        }
        self.starts.clear();
        self.starts.resize(shards + 1, 0);
        for s in 0..shards {
            self.starts[s + 1] = self.starts[s] + self.counts[s];
        }
        // Reuse `counts` as the per-shard write cursor.
        self.counts.copy_from_slice(&self.starts[..shards]);
        self.order.clear();
        self.order.resize(n, 0);
        self.pos.clear();
        self.pos.resize(n, 0);
        for i in 0..n {
            let s = self.shard_ids[i] as usize;
            let slot = self.counts[s];
            self.order[slot] = i as u32;
            self.pos[i] = (slot - self.starts[s]) as u32;
            self.counts[s] += 1;
        }
    }
}

/// A range-partitioned, thread-per-core sharded HOT: `N` independent
/// [`ConcurrentHot`] tries behind a deterministic batch router (see the
/// [module docs](self)). Results of every entry point are byte-identical
/// to a single trie holding the same keys.
pub struct ShardedHot<S>
where
    S: KeySource + Clone + Send + Sync + 'static,
{
    tries: Vec<Arc<ConcurrentHot<S>>>,
    workers: Vec<Worker>,
    /// Core each worker pinned to (`None`: unpinned / pinning failed).
    cores: Vec<Option<usize>>,
    /// Compiled partition. Write-once: the routing function must never
    /// change while any shard holds data, or routed lookups would miss
    /// keys inserted under the old partition.
    partition: OnceLock<Partition>,
    /// Requests routed per shard — the balance gauge behind
    /// [`shard_counts`](Self::shard_counts) / [`imbalance`](Self::imbalance).
    routed: Vec<AtomicU64>,
}

impl<S> ShardedHot<S>
where
    S: KeySource + Clone + Send + Sync + 'static,
{
    /// A sharded trie with `shards` shards (clamped to
    /// `1..=`[`MAX_SHARDS`]), shard-affine worker threads, and pinning
    /// per [`numa::pin_enabled`] (`HOT_PIN=0` disables it).
    pub fn new(source: S, shards: usize) -> Self {
        Self::with_config(source, shards, true, numa::pin_enabled())
    }

    /// A sharded trie sized by the `HOT_SHARDS` override, defaulting to
    /// one shard per available core.
    pub fn from_env(source: S) -> Self {
        Self::new(source, env_shards().unwrap_or_else(numa::core_count))
    }

    /// A sharded trie whose router runs entirely on the calling thread:
    /// no worker threads, no pinning. Same results; used where spawning
    /// threads is undesirable (differential tests, single-core hosts —
    /// there the caller *is* the one core's thread, so inline routing is
    /// the degenerate thread-per-core configuration).
    pub fn inline_router(source: S, shards: usize) -> Self {
        Self::with_config(source, shards, false, false)
    }

    /// Fully explicit constructor: shard count, whether to spawn the
    /// shard-affine worker pool, and whether workers pin themselves
    /// (`pin` is additionally gated by `HOT_PIN=0`).
    pub fn with_config(source: S, shards: usize, spawn_workers: bool, pin: bool) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        let tries: Vec<Arc<ConcurrentHot<S>>> = (0..shards)
            .map(|_| Arc::new(ConcurrentHot::new(source.clone())))
            .collect();
        let mut workers = Vec::new();
        let mut cores = Vec::new();
        if spawn_workers {
            let ncores = numa::core_count();
            for i in 0..shards {
                let core = i % ncores;
                let want_pin = pin && numa::pin_enabled();
                let (tx, rx) = mpsc::channel::<Job>();
                let (core_tx, core_rx) = mpsc::channel::<Option<usize>>();
                let handle = std::thread::Builder::new()
                    .name(format!("hot-shard-{i}"))
                    .spawn(move || {
                        // Pin before the first job: every allocation the
                        // shard's jobs perform first-touches memory on
                        // this core's NUMA node.
                        let pinned = want_pin && numa::pin_to_core(core);
                        let _ = core_tx.send(pinned.then_some(core));
                        let mut ctx = WorkerCtx::new();
                        while let Ok(job) = rx.recv() {
                            job(&mut ctx);
                        }
                    })
                    .expect("spawn shard worker");
                workers.push(Worker {
                    tx,
                    handle: Some(handle),
                });
                cores.push(core_rx.recv().unwrap_or(None));
            }
        }
        ShardedHot {
            tries,
            workers,
            cores,
            partition: OnceLock::new(),
            routed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A sharded trie with an explicit data-derived partition: one shard
    /// per splitter interval (`splitters.len() + 1` shards), workers and
    /// pinning as in [`new`](Self::new). Derive the splitters from a
    /// sample of the expected key population with
    /// [`splitters_from_sample`].
    pub fn with_splitters(source: S, splitters: Vec<Vec<u8>>) -> Self {
        let this = Self::new(source, splitters.len() + 1);
        let ok = this.set_splitters(splitters);
        debug_assert!(ok, "fresh structure accepts its first partition");
        this
    }

    /// Install the partition: splitter keys are sorted, deduplicated and
    /// truncated to `shards - 1`. Returns `false` (and changes nothing)
    /// if a partition is already installed or any shard holds keys —
    /// routing is fixed for the structure's lifetime once data exists.
    /// Until a partition is installed every key routes to shard 0
    /// (correct, just unbalanced); the first [`bulk_load`](Self::bulk_load)
    /// on an empty structure installs quantile splitters automatically.
    pub fn set_splitters(&self, mut splitters: Vec<Vec<u8>>) -> bool {
        if !self.is_empty() {
            return false;
        }
        splitters.sort_unstable();
        splitters.dedup();
        splitters.truncate(self.shards() - 1);
        self.partition.set(Partition::new(splitters)).is_ok()
    }

    /// The active splitter keys (empty until [`set_splitters`](Self::set_splitters)
    /// or the first bulk load installs a partition).
    pub fn splitters(&self) -> &[Vec<u8>] {
        self.partition.get().map_or(&[], |p| p.splitters.as_slice())
    }

    /// The shard owning `key` under the active partition.
    #[inline]
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.partition.get().map_or(0, |p| p.shard_of(key))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.tries.len()
    }

    /// The shard trie at `index` (differential tests inspect shards
    /// directly; production callers go through the router).
    pub fn shard(&self, index: usize) -> &ConcurrentHot<S> {
        &self.tries[index]
    }

    /// Core each worker is pinned to; `None` entries ran unpinned
    /// (pinning disabled, unsupported, or rejected by the kernel).
    /// Empty when the router runs inline.
    pub fn worker_cores(&self) -> &[Option<usize>] {
        &self.cores
    }

    /// Total keys across all shards.
    pub fn len(&self) -> usize {
        self.tries.iter().map(|t| t.len()).sum()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests routed per shard since construction (the load-balance
    /// gauge the metrics layer aggregates).
    pub fn shard_counts(&self) -> Vec<u64> {
        self.routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Routed-load imbalance: hottest shard over mean (1.0 = perfectly
    /// balanced, `shards()` = everything on one shard; 0 routed
    /// requests report 1.0).
    pub fn imbalance(&self) -> f64 {
        let counts = self.shard_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        max * counts.len() as f64 / total as f64
    }

    /// Charge the current batch (grouped offsets in `starts`) to the
    /// per-shard balance gauges.
    fn account(&self, starts: &[usize]) {
        for (s, gauge) in self.routed.iter().enumerate() {
            let c = (starts[s + 1] - starts[s]) as u64;
            if c > 0 {
                gauge.fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Run `jobs` (shard id, job) — on the shard-affine workers when the
    /// pool exists, else inline on `ctx` — and block until all completed.
    fn dispatch(&self, jobs: Vec<(usize, Job)>, ctx: &mut WorkerCtx) {
        if self.workers.is_empty() {
            // Inline mode shares the caller's context across shards;
            // per-shard slices still run as independent scheduler
            // batches, preserving shard-grouped descent locality.
            for (_, job) in jobs {
                job(ctx);
            }
            return;
        }
        let latch = Latch::new(jobs.len());
        for (s, job) in jobs {
            let latch = Arc::clone(&latch);
            let wrapped: Job = Box::new(move |ctx| {
                let ok =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(ctx))).is_ok();
                latch.finish(ok);
            });
            self.workers[s].tx.send(wrapped).expect("shard worker alive");
        }
        latch.wait();
    }

    /// Inline-mode fused drive for scan-bearing batches: the whole
    /// batch runs as **one** scheduler pass whose per-request root
    /// reload classifies the key and starts the descent in its shard's
    /// trie. (Pure lookup/probe batches take `queued_run` instead —
    /// shard-grouped draining beats in-ring routing for them, but scan
    /// spans are emitted by stream position, which grouping permutes.)
    ///
    /// This folds routing into the out-of-order descent pipeline
    /// instead of running a separate split pass: an up-front classify
    /// loop pays one *serial* cold miss per key just to read the key
    /// bytes (prefetching can't hide it — a software prefetch is
    /// dropped on a dTLB miss, and a shuffled probe stream misses the
    /// TLB constantly), which costs a sizable fraction of a whole trie
    /// descent. At stage time the scheduler has already issued that
    /// key-byte prefetch a full sweep earlier (it must copy the key
    /// into the lane anyway), so classification runs against warm
    /// bytes and its latency overlaps the other in-flight descents —
    /// the same discipline the scheduler applies to node misses.
    ///
    /// Descents of different shards interleave in the lane ring, each
    /// against its own root; one epoch pin covers them all (every
    /// shard defers reclamation through the global collector). Scan
    /// seeks stay bounded to their start shard — callers chase
    /// cross-shard continuations from the per-request spans left in
    /// `ctx.tids` / `ctx.bounds`.
    fn fused_run<Q>(&self, reqs: &Q, out: &mut [Option<u64>], ctx: &mut WorkerCtx)
    where
        Q: RequestStream + ?Sized,
    {
        let WorkerCtx {
            sched, tids, bounds, ..
        } = ctx;
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let metrics = self.tries[0].metrics();
        metrics.incr(RowexCounter::EpochPin);
        let _guard = epoch::pin();
        sched.run(
            self.tries[0].source(),
            reqs,
            out,
            tids,
            bounds,
            |key| {
                let s = self.shard_of(key);
                // Balance gauge: one count per staged descent (a rare
                // torn-slot re-descent counts again — it is a descent).
                self.routed[s].fetch_add(1, Ordering::Relaxed);
                self.tries[s].load_root()
            },
            true,
            true,
            metrics,
        );
    }

    /// Inline-mode grouped drive for lookups and remove probes: a
    /// prefetch-pipelined *branchless* classify pass fills per-shard
    /// slot queues, then each queue drains through the scheduler one
    /// shard at a time in [`DRAIN_WINDOW`]-sized windows — each
    /// window's keys gathered contiguous, its results scattered back to
    /// the original batch slots.
    ///
    /// This is the profitable half of a trade `fused_run` loses for
    /// point lookups: folding routing into the ring avoids the classify
    /// pass's cold key read, but interleaves descents of *different*
    /// shards in one lane ring, and the shards' upper levels then evict
    /// each other from the cache — roughly one extra miss per descent,
    /// which is the very miss the shallower per-shard tries saved.
    /// Draining shard-grouped keeps one trie's upper levels hot for a
    /// whole queue; the classify pass it costs stays cheap because the
    /// flat fast path has no data-dependent branches, so the cold key
    /// reads of many iterations stay in flight together (a mispredicted
    /// branch per key would drain the pipeline and serialize them).
    /// Scans stay on `fused_run`: their results are emitted by stream
    /// position, which grouping would permute.
    fn queued_run(
        &self,
        keys: &[&[u8]],
        kind: DescentKind,
        out: &mut [Option<u64>],
        scratch: &mut RouterScratch,
    ) {
        let n = keys.len();
        let shards = self.shards();
        let RouterScratch { queues, ctx, .. } = scratch;
        queues.resize_with(shards, Vec::new);
        for q in queues.iter_mut() {
            q.clear();
        }
        match self.partition.get() {
            None => queues[0].extend(0..n as u32),
            Some(p) => {
                // Hoisted classifier state (see [`flat_classify`]).
                let prefix: &[u8] = &p.prefix;
                let words: &[u64] = &p.words;
                for i in 0..n {
                    if let Some(k) = keys.get(i + CLASSIFY_PF_AHEAD) {
                        hot_bits::prefetch_node(k.as_ptr(), 1);
                    }
                    let k = keys[i];
                    let s = flat_classify(prefix, words, k)
                        .unwrap_or_else(|| p.classify_slow(k));
                    queues[s].push(i as u32);
                }
            }
        }
        for (gauge, q) in self.routed.iter().zip(queues.iter()) {
            if !q.is_empty() {
                gauge.fetch_add(q.len() as u64, Ordering::Relaxed);
            }
        }
        let WorkerCtx {
            sched, tids, bounds, ..
        } = ctx;
        tids.clear();
        bounds.clear();
        bounds.push(0);
        let metrics = self.tries[0].metrics();
        metrics.incr(RowexCounter::EpochPin);
        let _guard = epoch::pin();
        let mut wkeys: Vec<&[u8]> = Vec::with_capacity(DRAIN_WINDOW);
        let mut sub: Vec<Option<u64>> = vec![None; DRAIN_WINDOW];
        for (s, q) in queues.iter().enumerate() {
            for win in q.chunks(DRAIN_WINDOW) {
                wkeys.clear();
                wkeys.extend(win.iter().map(|&t| keys[t as usize]));
                let stream = GatherStream { keys: &wkeys, kind };
                sched.run(
                    self.tries[s].source(),
                    &stream,
                    &mut sub[..win.len()],
                    tids,
                    bounds,
                    |_| self.tries[s].load_root(),
                    false,
                    true,
                    metrics,
                );
                for (j, &t) in win.iter().enumerate() {
                    out[t as usize] = sub[j];
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scalar operations: routed inline (one descent has no batch to
    // amortize a worker hand-off against).
    // ------------------------------------------------------------------

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.tries[self.shard_of(key)].get(key)
    }

    /// Point lookup with a caller-provided padded-key buffer.
    pub fn get_with(&self, key: &[u8], buf: &mut PaddedKey) -> Option<u64> {
        self.tries[self.shard_of(key)].get_with(key, buf)
    }

    /// Insert `key → tid` (upsert); returns the previous TID if present.
    pub fn insert(&self, key: &[u8], tid: u64) -> Option<u64> {
        self.tries[self.shard_of(key)].insert(key, tid)
    }

    /// Remove `key`; returns its TID if present.
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        self.tries[self.shard_of(key)].remove(key)
    }

    /// Collect up to `limit` TIDs with keys `>= key` in ascending key
    /// order, crossing shard boundaries as needed.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.scan_into(key, limit, &mut out);
        out
    }

    /// Like [`scan`](Self::scan), writing into `out` (cleared first).
    pub fn scan_into(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) {
        out.clear();
        let sp = self.splitters();
        let mut shard = self.shard_of(key);
        self.tries[shard].scan_into(key, limit, out);
        let mut cont = Vec::new();
        // Shard `s + 1` owns exactly the keys `>= splitter[s]`, so
        // resuming there from its splitter continues the global order.
        while out.len() < limit && shard < sp.len() {
            shard += 1;
            self.tries[shard].scan_into(&sp[shard - 1], limit - out.len(), &mut cont);
            out.extend_from_slice(&cont);
        }
    }

    // ------------------------------------------------------------------
    // Paged scans: resumable continuation tokens for out-of-process
    // callers (the wire protocol) that cannot hold a cursor across
    // calls.
    // ------------------------------------------------------------------

    /// One page of a scan starting at `key` (inclusive): up to `limit`
    /// TIDs in ascending key order, crossing shard boundaries as needed.
    /// Returns `Some(token)` when the page filled — more keys *may*
    /// follow; resume strictly after the page with
    /// [`scan_resume`](Self::scan_resume). A short page means the key
    /// space is exhausted. `limit` must be at least 1 to make progress
    /// (a zero-limit page is empty and unresumable).
    pub fn scan_page(&self, key: &[u8], limit: usize, out: &mut Vec<u64>) -> Option<ScanToken> {
        self.scan_into(key, limit, out);
        self.scan_token(out, limit)
    }

    /// The next page of a scan paused at `token`: up to `limit` TIDs
    /// with keys strictly greater than `token.last_key`, in ascending
    /// key order. Deleting the token's key between pages is fine — the
    /// page then starts at its successor. Returns the follow-up token
    /// under the same contract as [`scan_page`](Self::scan_page).
    pub fn scan_resume(
        &self,
        token: &ScanToken,
        limit: usize,
        out: &mut Vec<u64>,
    ) -> Option<ScanToken> {
        if limit == 0 {
            out.clear();
            return Some(token.clone());
        }
        // Re-seek at the last key inclusively, over-fetch by one, and
        // drop the token key itself if it is still present: keys are
        // unique, so at most the first result can equal it.
        self.scan_into(&token.last_key, limit.saturating_add(1), out);
        if let Some(&first) = out.first() {
            let src = self.tries[0].source();
            if src.cmp_tid_key(first, &token.last_key) == std::cmp::Ordering::Equal {
                out.remove(0);
            }
        }
        out.truncate(limit);
        self.scan_token(out, limit)
    }

    /// Mint the continuation token for a scan page: when `page` filled
    /// its `limit`, resolve the last TID's key through the shared key
    /// source and record it with its owning shard. A short page has no
    /// continuation — the scan ran off the end of the key space.
    pub fn scan_token(&self, page: &[u64], limit: usize) -> Option<ScanToken> {
        let &last = page.last()?;
        if page.len() < limit {
            return None;
        }
        let mut scratch = [0u8; KEY_SCRATCH_LEN];
        let key = self.tries[0].source().load_key(last, &mut scratch);
        Some(ScanToken {
            shard: self.shard_of(key) as u32,
            last_key: key.to_vec(),
        })
    }

    // ------------------------------------------------------------------
    // Batched operations: the router.
    // ------------------------------------------------------------------

    /// Batched point lookups, routed by shard and drained through each
    /// shard's out-of-order scheduler; `out[i]` answers `keys[i]`.
    pub fn get_batch(&self, keys: &[&[u8]], out: &mut [Option<u64>]) {
        let mut scratch = RouterScratch::new();
        self.get_batch_with(keys, out, &mut scratch);
    }

    /// [`get_batch`](Self::get_batch) with caller-owned router scratch
    /// (allocation-light once warmed up; hold one per driving thread).
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn get_batch_with(
        &self,
        keys: &[&[u8]],
        out: &mut [Option<u64>],
        scratch: &mut RouterScratch,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let n = keys.len();
        if n == 0 {
            return;
        }
        if self.workers.is_empty() {
            // No worker pool to parallelize against: branchless classify
            // into per-shard queues, then shard-grouped gather/drain/
            // scatter windows (see `queued_run`).
            let m = self.tries[0].metrics();
            let _t = m.timer(OpKind::GetBatch);
            m.items(OpKind::GetBatch, n as u64);
            self.queued_run(keys, DescentKind::Lookup, out, scratch);
            return;
        }
        let shards = self.shards();
        scratch.split(shards, n, |i| keys[i], |k| self.shard_of(k));
        self.account(&scratch.starts);
        gather_keys(scratch, |g| keys[g]);
        scratch.outs.clear();
        scratch.outs.resize(n, None);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (scratch.starts[s], scratch.starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&scratch.keys[lo..hi]);
            let lenp = SharedSlice::new(&scratch.key_lens[lo..hi]);
            let outp = MutSlice::new(&mut scratch.outs[lo..hi]);
            jobs.push((
                s,
                Box::new(move |ctx: &mut WorkerCtx| {
                    // SAFETY: the dispatching call blocks on the batch
                    // latch until this job finished, so the gathered
                    // scratch buffers are live; `outp` is this shard's
                    // disjoint segment.
                    let (kp, kl, o) = unsafe { (keyp.get(), lenp.get(), outp.get()) };
                    run_shard_gets(&trie, kp, kl, o, ctx);
                }),
            ));
        }
        self.dispatch(jobs, &mut scratch.ctx);
        for (slot, &orig) in scratch.outs.iter().zip(scratch.order.iter()) {
            out[orig as usize] = *slot;
        }
    }

    /// Batched removals, routed by shard; `out[i]` is what
    /// [`remove`](Self::remove) would have returned for `keys[i]`.
    ///
    /// # Panics
    /// Panics if `keys` and `out` differ in length.
    pub fn remove_batch(
        &self,
        keys: &[&[u8]],
        out: &mut [Option<u64>],
        scratch: &mut RouterScratch,
    ) {
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let n = keys.len();
        if n == 0 {
            return;
        }
        if self.workers.is_empty() {
            // Grouped probe pass (warms each hit's path), then the
            // structural removals apply per probed-present key, walking
            // the same shard-grouped queues — within a shard the queue
            // preserves request order, and duplicate keys always share
            // a shard, so "the first apply wins" resolves exactly as in
            // the single trie's `remove_batch`.
            let m = self.tries[0].metrics();
            let _t = m.timer(OpKind::RemoveBatch);
            m.items(OpKind::RemoveBatch, n as u64);
            self.queued_run(keys, DescentKind::RemoveProbe, out, scratch);
            for (s, q) in scratch.queues.iter().enumerate() {
                for &slot in q {
                    let i = slot as usize;
                    if out[i].is_some() {
                        out[i] = self.tries[s].remove(keys[i]);
                    }
                }
            }
            return;
        }
        let shards = self.shards();
        scratch.split(shards, n, |i| keys[i], |k| self.shard_of(k));
        self.account(&scratch.starts);
        gather_keys(scratch, |g| keys[g]);
        scratch.outs.clear();
        scratch.outs.resize(n, None);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (scratch.starts[s], scratch.starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&scratch.keys[lo..hi]);
            let lenp = SharedSlice::new(&scratch.key_lens[lo..hi]);
            let outp = MutSlice::new(&mut scratch.outs[lo..hi]);
            jobs.push((
                s,
                Box::new(move |ctx: &mut WorkerCtx| {
                    // SAFETY: as in `get_batch_with` — latch-bounded
                    // borrows, disjoint output segment.
                    let (kp, kl, o) = unsafe { (keyp.get(), lenp.get(), outp.get()) };
                    run_shard_removes(&trie, kp, kl, o, ctx);
                }),
            ));
        }
        self.dispatch(jobs, &mut scratch.ctx);
        for (slot, &orig) in scratch.outs.iter().zip(scratch.order.iter()) {
            out[orig as usize] = *slot;
        }
    }

    /// Batched inserts, routed by shard and **applied on the shard's
    /// worker thread** — under first-touch placement this is what puts a
    /// shard's nodes on its worker's NUMA node. `out[i]` receives the
    /// previous TID of `keys[i]`, as scalar [`insert`](Self::insert)
    /// would have returned.
    ///
    /// # Panics
    /// Panics if `keys`, `tids` and `out` differ in length.
    pub fn insert_batch(
        &self,
        keys: &[&[u8]],
        tids: &[u64],
        out: &mut [Option<u64>],
        scratch: &mut RouterScratch,
    ) {
        assert_eq!(keys.len(), tids.len(), "one tid per key");
        assert_eq!(keys.len(), out.len(), "one output slot per key");
        let n = keys.len();
        if n == 0 {
            return;
        }
        let shards = self.shards();
        scratch.split(shards, n, |i| keys[i], |k| self.shard_of(k));
        self.account(&scratch.starts);
        gather_keys(scratch, |g| keys[g]);
        scratch.vals.clear();
        for &orig in &scratch.order {
            scratch.vals.push(tids[orig as usize]);
        }
        scratch.outs.clear();
        scratch.outs.resize(n, None);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (scratch.starts[s], scratch.starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&scratch.keys[lo..hi]);
            let lenp = SharedSlice::new(&scratch.key_lens[lo..hi]);
            let valp = SharedSlice::new(&scratch.vals[lo..hi]);
            let outp = MutSlice::new(&mut scratch.outs[lo..hi]);
            jobs.push((
                s,
                Box::new(move |_ctx: &mut WorkerCtx| {
                    // SAFETY: as in `get_batch_with` — latch-bounded
                    // borrows, disjoint output segment.
                    let (kp, kl, v, o) = unsafe { (keyp.get(), lenp.get(), valp.get(), outp.get()) };
                    run_shard_inserts(&trie, kp, kl, v, o);
                }),
            ));
        }
        self.dispatch(jobs, &mut scratch.ctx);
        for (slot, &orig) in scratch.outs.iter().zip(scratch.order.iter()) {
            out[orig as usize] = *slot;
        }
    }

    /// Batched range scans under the router: request `i`'s TIDs land in
    /// `tids[bounds[i]..bounds[i + 1]]` (both cleared first, `bounds`
    /// seeded with 0 — the `scan_batch_ooo` contract). Each shard's
    /// slice runs through its scheduler; requests whose range crosses a
    /// shard boundary continue into the following shards, so results
    /// match a single trie exactly.
    pub fn scan_batch(
        &self,
        requests: &[(&[u8], usize)],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        scratch: &mut RouterScratch,
    ) {
        let n = requests.len();
        tids.clear();
        bounds.clear();
        bounds.push(0);
        if n == 0 {
            return;
        }
        if self.workers.is_empty() {
            // Fused seek pass (each scan bounded to its start shard),
            // then per-request cross-shard continuation while copying
            // the spans out in request order.
            let m = self.tries[0].metrics();
            let _t = m.timer(OpKind::ScanBatch);
            self.fused_run(&ScanStream(requests), &mut [], &mut scratch.ctx);
            for (i, &(key, limit)) in requests.iter().enumerate() {
                let (lo, hi) = (scratch.ctx.bounds[i], scratch.ctx.bounds[i + 1]);
                tids.extend_from_slice(&scratch.ctx.tids[lo..hi]);
                self.continue_scan(key, limit, hi - lo, tids, &mut scratch.cont);
                bounds.push(tids.len());
            }
            m.items(OpKind::ScanBatch, tids.len() as u64);
            return;
        }
        let shards = self.shards();
        scratch.split(shards, n, |i| requests[i].0, |k| self.shard_of(k));
        self.account(&scratch.starts);
        gather_keys(scratch, |g| requests[g].0);
        scratch.vals.clear();
        for &orig in &scratch.order {
            scratch.vals.push(requests[orig as usize].1 as u64);
        }
        stage_scans(scratch, shards);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (scratch.starts[s], scratch.starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&scratch.keys[lo..hi]);
            let lenp = SharedSlice::new(&scratch.key_lens[lo..hi]);
            let valp = SharedSlice::new(&scratch.vals[lo..hi]);
            let cntp = MutSlice::new(&mut scratch.req_counts[lo..hi]);
            let (seg_lo, seg_hi) = (scratch.seg_starts[s], scratch.seg_starts[s + 1]);
            let stagep = MutSlice::new(&mut scratch.stage[seg_lo..seg_hi]);
            jobs.push((
                s,
                Box::new(move |ctx: &mut WorkerCtx| {
                    // SAFETY: as in `get_batch_with` — latch-bounded
                    // borrows; `cntp`/`stagep` are this shard's disjoint
                    // segments.
                    let (kp, kl, v, cnt, stage) = unsafe {
                        (keyp.get(), lenp.get(), valp.get(), cntp.get(), stagep.get())
                    };
                    run_shard_scans(&trie, kp, kl, v, cnt, stage, ctx);
                }),
            ));
        }
        self.dispatch(jobs, &mut scratch.ctx);
        self.emit_scans(scratch, n, tids, bounds, |i| requests[i].1, |_| true);
    }

    /// A mixed stream of point lookups and range scans, routed by shard
    /// and serviced through each shard's scheduler: `out[i]` answers
    /// request `i` when it is a get (scan slots stay untouched, as in
    /// `mixed_batch_ooo`), scan TIDs land flat in `tids` with one span
    /// per scan request in `bounds` — the single-trie contract,
    /// shard-transparently.
    ///
    /// # Panics
    /// Panics if `reqs` and `out` differ in length.
    pub fn mixed_batch(
        &self,
        reqs: &[BatchRequest<'_>],
        out: &mut [Option<u64>],
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        scratch: &mut RouterScratch,
    ) {
        assert_eq!(reqs.len(), out.len(), "one output slot per request");
        let n = reqs.len();
        tids.clear();
        bounds.clear();
        bounds.push(0);
        if n == 0 {
            return;
        }
        if self.workers.is_empty() {
            // Fused mixed pass: gets land in `out` directly, scan spans
            // are copied out in request order with their cross-shard
            // continuations chased here.
            let m = self.tries[0].metrics();
            let _tg = m.timer(OpKind::GetBatch);
            let _ts = m.timer(OpKind::ScanBatch);
            let gets = reqs.iter().filter(|r| matches!(r, BatchRequest::Get(_))).count();
            m.items(OpKind::GetBatch, gets as u64);
            self.fused_run(reqs, out, &mut scratch.ctx);
            let mut scan_idx = 0usize;
            for r in reqs {
                if let BatchRequest::Scan(key, limit) = *r {
                    let (lo, hi) = (
                        scratch.ctx.bounds[scan_idx],
                        scratch.ctx.bounds[scan_idx + 1],
                    );
                    scan_idx += 1;
                    tids.extend_from_slice(&scratch.ctx.tids[lo..hi]);
                    self.continue_scan(key, limit, hi - lo, tids, &mut scratch.cont);
                    bounds.push(tids.len());
                }
            }
            m.items(OpKind::ScanBatch, tids.len() as u64);
            return;
        }
        let shards = self.shards();
        scratch.split(shards, n, |i| req_key(&reqs[i]), |k| self.shard_of(k));
        self.account(&scratch.starts);
        gather_keys(scratch, |g| req_key(&reqs[g]));
        // Limits: scans carry `limit + 1`, gets carry 0 — the worker
        // reconstructs the request kind from this alone, keeping jobs
        // free of the caller's `BatchRequest` borrows.
        scratch.vals.clear();
        for &orig in &scratch.order {
            scratch.vals.push(match reqs[orig as usize] {
                BatchRequest::Get(_) => 0,
                BatchRequest::Scan(_, limit) => limit as u64 + 1,
            });
        }
        stage_scans(scratch, shards);
        scratch.outs.clear();
        scratch.outs.resize(n, None);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (scratch.starts[s], scratch.starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&scratch.keys[lo..hi]);
            let lenp = SharedSlice::new(&scratch.key_lens[lo..hi]);
            let valp = SharedSlice::new(&scratch.vals[lo..hi]);
            let outp = MutSlice::new(&mut scratch.outs[lo..hi]);
            let cntp = MutSlice::new(&mut scratch.req_counts[lo..hi]);
            let (seg_lo, seg_hi) = (scratch.seg_starts[s], scratch.seg_starts[s + 1]);
            let stagep = MutSlice::new(&mut scratch.stage[seg_lo..seg_hi]);
            jobs.push((
                s,
                Box::new(move |ctx: &mut WorkerCtx| {
                    // SAFETY: as in `get_batch_with` — latch-bounded
                    // borrows; all mutable segments disjoint per shard.
                    let (kp, kl, v, o, cnt, stage) = unsafe {
                        (
                            keyp.get(),
                            lenp.get(),
                            valp.get(),
                            outp.get(),
                            cntp.get(),
                            stagep.get(),
                        )
                    };
                    run_shard_mixed(&trie, kp, kl, v, o, cnt, stage, ctx);
                }),
            ));
        }
        self.dispatch(jobs, &mut scratch.ctx);
        for (slot, &orig) in scratch.outs.iter().zip(scratch.order.iter()) {
            let i = orig as usize;
            if matches!(reqs[i], BatchRequest::Get(_)) {
                out[i] = *slot;
            }
        }
        self.emit_scans(
            scratch,
            n,
            tids,
            bounds,
            |i| match reqs[i] {
                BatchRequest::Scan(_, limit) => limit,
                BatchRequest::Get(_) => 0,
            },
            |i| matches!(reqs[i], BatchRequest::Scan(..)),
        );
    }

    /// Sorted bulk load, split at the shard boundaries and built
    /// **per shard on its worker thread** (first-touch placement), each
    /// sub-range through the existing bottom-up builder. Loading an
    /// empty structure with no partition installed first derives
    /// equal-count quantile splitters from `entries` — the balanced
    /// partition for exactly this population. Returns the total keys
    /// loaded. On error some shards may already be loaded — discard the
    /// structure, exactly as for a failed single-trie load.
    pub fn bulk_load(&self, entries: &[(&[u8], u64)]) -> Result<usize, BulkLoadError> {
        let shards = self.shards();
        if self.partition.get().is_none() && !entries.is_empty() {
            let sample: Vec<&[u8]> = entries.iter().map(|&(k, _)| k).collect();
            // `set_splitters` refuses on a non-empty structure; then all
            // entries route to shard 0 and its builder reports NotEmpty.
            let _ = self.set_splitters(splitters_from_sample(&sample, shards));
        }
        let mut results: Vec<Option<Result<usize, BulkLoadError>>> = vec![None; shards];
        // Gather raw parts so the jobs stay `'static` (cold path: the
        // per-load allocations here don't matter).
        let kp: Vec<KeyPtr> = entries.iter().map(|(k, _)| KeyPtr(k.as_ptr())).collect();
        let kl: Vec<usize> = entries.iter().map(|(k, _)| k.len()).collect();
        let tv: Vec<u64> = entries.iter().map(|&(_, t)| t).collect();
        let mut starts = vec![0usize; shards + 1];
        for s in 0..shards {
            starts[s + 1] = if s + 1 == shards {
                entries.len()
            } else {
                entries.partition_point(|(k, _)| self.shard_of(k) <= s)
            };
        }
        self.account(&starts);
        let mut jobs: Vec<(usize, Job)> = Vec::new();
        for s in 0..shards {
            let (lo, hi) = (starts[s], starts[s + 1]);
            if lo == hi {
                continue;
            }
            let trie = Arc::clone(&self.tries[s]);
            let keyp = SharedSlice::new(&kp[lo..hi]);
            let lenp = SharedSlice::new(&kl[lo..hi]);
            let valp = SharedSlice::new(&tv[lo..hi]);
            let res = MutSlice::new(&mut results[s..s + 1]);
            jobs.push((
                s,
                Box::new(move |_ctx: &mut WorkerCtx| {
                    // SAFETY: latch-bounded borrows; each job owns
                    // exactly its shard's one-element result slot.
                    let (p, l, v, r) = unsafe { (keyp.get(), lenp.get(), valp.get(), res.get()) };
                    let mut seg: Vec<(&[u8], u64)> = Vec::with_capacity(p.len());
                    for j in 0..p.len() {
                        // SAFETY: gathered pointer/len pairs name the
                        // caller's live entry keys (latch-bounded).
                        seg.push((unsafe { key_slice(p[j], l[j]) }, v[j]));
                    }
                    r[0] = Some(trie.bulk_load(&seg));
                }),
            ));
        }
        let mut ctx = WorkerCtx::new();
        self.dispatch(jobs, &mut ctx);
        let mut total = 0usize;
        for res in results.into_iter().flatten() {
            total += res?;
        }
        Ok(total)
    }

    /// Aggregate memory footprint across all shards.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut agg = MemoryStats::default();
        for t in &self.tries {
            let m = t.memory_stats();
            agg.node_bytes += m.node_bytes;
            agg.node_count += m.node_count;
            agg.aux_bytes += m.aux_bytes;
            agg.key_count += m.key_count;
            agg.capacity_bytes += m.capacity_bytes;
        }
        agg
    }

    /// Merged metrics snapshot across every shard (counters and
    /// histograms summed per operation kind).
    #[cfg(feature = "metrics")]
    pub fn metrics_snapshot(&self) -> hot_metrics::MetricsSnapshot {
        let mut merged = self.tries[0].metrics_ops_snapshot();
        for t in &self.tries[1..] {
            merged.merge(&t.metrics_ops_snapshot());
        }
        merged
    }

    /// Chase a scan's cross-shard continuation: `got` TIDs were already
    /// produced in `key`'s start shard; keep appending from the
    /// following shards' lower bounds (shard `s + 1` owns exactly the
    /// keys `>= splitter[s]`, so concatenation *is* the merge) until
    /// `limit` is met or the key space ends.
    fn continue_scan(
        &self,
        key: &[u8],
        limit: usize,
        mut got: usize,
        tids: &mut Vec<u64>,
        cont: &mut Vec<u64>,
    ) {
        let sp = self.splitters();
        let shards = self.shards();
        let mut next = self.shard_of(key) + 1;
        while got < limit && next <= sp.len() && next < shards {
            self.tries[next].scan_into(&sp[next - 1], limit - got, cont);
            got += cont.len();
            tids.extend_from_slice(cont);
            next += 1;
        }
    }

    /// Re-emit scan results in request order: for each scan request (in
    /// original order) copy its shard-local TID run out of the staging
    /// area, then chase cross-shard continuations, then close its bound.
    fn emit_scans(
        &self,
        scratch: &mut RouterScratch,
        n: usize,
        tids: &mut Vec<u64>,
        bounds: &mut Vec<usize>,
        limit_of: impl Fn(usize) -> usize,
        is_scan: impl Fn(usize) -> bool,
    ) {
        let shards = self.shards();
        let sp = self.splitters();
        // Absolute stage offset per gathered request: prefix sums of the
        // produced counts within each shard's segment.
        scratch.req_offs.clear();
        scratch.req_offs.resize(scratch.order.len(), 0);
        for s in 0..shards {
            let mut off = scratch.seg_starts[s];
            for g in scratch.starts[s]..scratch.starts[s + 1] {
                scratch.req_offs[g] = off;
                off += scratch.req_counts[g];
            }
        }
        for i in 0..n {
            if !is_scan(i) {
                continue;
            }
            let s = scratch.shard_ids[i] as usize;
            let g = scratch.starts[s] + scratch.pos[i] as usize;
            let count = scratch.req_counts[g];
            let off = scratch.req_offs[g];
            tids.extend_from_slice(&scratch.stage[off..off + count]);
            // Cross-shard continuation: a scan that exhausted its start
            // shard below its limit resumes at the next shard's lower
            // bound (shards are contiguous key ranges, so concatenation
            // *is* the merge).
            let limit = limit_of(i);
            let mut got = count;
            let mut next = s + 1;
            while got < limit && next <= sp.len() && next < shards {
                self.tries[next].scan_into(&sp[next - 1], limit - got, &mut scratch.cont);
                got += scratch.cont.len();
                tids.extend_from_slice(&scratch.cont);
                next += 1;
            }
            bounds.push(tids.len());
        }
    }
}

impl<S> Drop for ShardedHot<S>
where
    S: KeySource + Clone + Send + Sync + 'static,
{
    fn drop(&mut self) {
        // Close every job channel, then join: workers exit their recv
        // loop once the last sender is gone.
        for w in &mut self.workers {
            let (closed_tx, _) = mpsc::channel();
            let _ = std::mem::replace(&mut w.tx, closed_tx);
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The key a mixed request descends on.
fn req_key<'a>(r: &BatchRequest<'a>) -> &'a [u8] {
    match *r {
        BatchRequest::Get(k) => k,
        BatchRequest::Scan(k, _) => k,
    }
}

/// Gather the batch's key slices into scratch as raw parts, grouped by
/// shard (raw so the jobs that reborrow them stay `'static`).
fn gather_keys<'k>(scratch: &mut RouterScratch, mut key_of: impl FnMut(usize) -> &'k [u8]) {
    scratch.keys.clear();
    scratch.key_lens.clear();
    for &orig in &scratch.order {
        let k = key_of(orig as usize);
        scratch.keys.push(KeyPtr(k.as_ptr()));
        scratch.key_lens.push(k.len());
    }
}

/// Size the scan staging area: one disjoint `stage` segment per shard,
/// bounded by the shard's limit sum (`vals` holds gathered limits; the
/// mixed router stores `limit + 1` for scans and 0 for gets — both are
/// safe over-estimates, segments are capacity bounds).
fn stage_scans(scratch: &mut RouterScratch, shards: usize) {
    scratch.seg_starts.clear();
    scratch.seg_starts.resize(shards + 1, 0);
    for s in 0..shards {
        let span: u64 = scratch.vals[scratch.starts[s]..scratch.starts[s + 1]]
            .iter()
            .sum();
        scratch.seg_starts[s + 1] = scratch.seg_starts[s] + span as usize;
    }
    scratch.stage.clear();
    scratch.stage.resize(scratch.seg_starts[shards], 0);
    scratch.req_counts.clear();
    scratch.req_counts.resize(scratch.order.len(), 0);
}

/// Reborrow a gathered (pointer, length) pair as a key slice.
///
/// # Safety
/// The dispatching call must still be blocked on the batch latch, so the
/// caller-owned key bytes are live.
unsafe fn key_slice<'a>(p: KeyPtr, len: usize) -> &'a [u8] {
    // SAFETY: caller upholds the latch-bounded lifetime contract; the
    // pair was gathered from a real key slice.
    unsafe { std::slice::from_raw_parts(p.0, len) }
}

/// Shard-slice lookups: rebuild the gathered keys in the worker's
/// reusable buffer and drain them through its scheduler ring.
fn run_shard_gets<S: KeySource>(
    trie: &ConcurrentHot<S>,
    key_ptrs: &[KeyPtr],
    key_lens: &[usize],
    out: &mut [Option<u64>],
    ctx: &mut WorkerCtx,
) {
    ctx.keys.clear();
    for (&p, &l) in key_ptrs.iter().zip(key_lens) {
        // SAFETY: latch-bounded gathered pointers; `ctx.keys` is cleared
        // again below, so no laundered reference outlives the dispatch.
        ctx.keys.push(unsafe { key_slice(p, l) });
    }
    trie.get_batch_ooo(&ctx.keys, out, &mut ctx.sched);
    ctx.keys.clear();
}

/// Shard-slice removals through the batched probe + apply path.
fn run_shard_removes<S: KeySource>(
    trie: &ConcurrentHot<S>,
    key_ptrs: &[KeyPtr],
    key_lens: &[usize],
    out: &mut [Option<u64>],
    ctx: &mut WorkerCtx,
) {
    ctx.keys.clear();
    for (&p, &l) in key_ptrs.iter().zip(key_lens) {
        // SAFETY: as in `run_shard_gets` — latch-bounded, cleared below.
        ctx.keys.push(unsafe { key_slice(p, l) });
    }
    trie.remove_batch(&ctx.keys, out);
    ctx.keys.clear();
}

/// Shard-slice inserts (the first-touch write path).
fn run_shard_inserts<S: KeySource>(
    trie: &ConcurrentHot<S>,
    key_ptrs: &[KeyPtr],
    key_lens: &[usize],
    tids: &[u64],
    out: &mut [Option<u64>],
) {
    for j in 0..key_ptrs.len() {
        // SAFETY: latch-bounded gathered pointers; the reference dies at
        // the end of this iteration.
        let key = unsafe { key_slice(key_ptrs[j], key_lens[j]) };
        out[j] = trie.insert(key, tids[j]);
    }
}

/// Shard-slice scans: drain through the scheduler into the worker's
/// buffers, then copy each request's TID run into the shard's staging
/// segment and record its count.
fn run_shard_scans<S: KeySource>(
    trie: &ConcurrentHot<S>,
    key_ptrs: &[KeyPtr],
    key_lens: &[usize],
    limits: &[u64],
    req_counts: &mut [usize],
    stage: &mut [u64],
    ctx: &mut WorkerCtx,
) {
    ctx.scans.clear();
    for j in 0..key_ptrs.len() {
        // SAFETY: as in `run_shard_gets` — latch-bounded, cleared below.
        let key = unsafe { key_slice(key_ptrs[j], key_lens[j]) };
        ctx.scans.push((key, limits[j] as usize));
    }
    trie.scan_batch_ooo(&ctx.scans, &mut ctx.tids, &mut ctx.bounds, &mut ctx.sched);
    ctx.scans.clear();
    let mut off = 0usize;
    for (j, span) in ctx.bounds.windows(2).enumerate() {
        let run = &ctx.tids[span[0]..span[1]];
        stage[off..off + run.len()].copy_from_slice(run);
        req_counts[j] = run.len();
        off += run.len();
    }
}

/// Shard-slice mixed get/scan streams (`limits[j] == 0`: get; else scan
/// with limit `limits[j] - 1`).
#[allow(clippy::too_many_arguments)] // router plumbing, mirrors run_shard_scans
fn run_shard_mixed<S: KeySource>(
    trie: &ConcurrentHot<S>,
    key_ptrs: &[KeyPtr],
    key_lens: &[usize],
    limits: &[u64],
    out: &mut [Option<u64>],
    req_counts: &mut [usize],
    stage: &mut [u64],
    ctx: &mut WorkerCtx,
) {
    ctx.mixed.clear();
    for j in 0..key_ptrs.len() {
        // SAFETY: as in `run_shard_gets` — latch-bounded, cleared below.
        let key = unsafe { key_slice(key_ptrs[j], key_lens[j]) };
        ctx.mixed.push(if limits[j] == 0 {
            BatchRequest::Get(key)
        } else {
            BatchRequest::Scan(key, limits[j] as usize - 1)
        });
    }
    trie.mixed_batch_ooo(&ctx.mixed, out, &mut ctx.tids, &mut ctx.bounds, &mut ctx.sched);
    ctx.mixed.clear();
    let mut off = 0usize;
    let mut scan_ord = 0usize;
    for (j, &limit) in limits.iter().enumerate() {
        if limit == 0 {
            continue;
        }
        let (b_lo, b_hi) = (ctx.bounds[scan_ord], ctx.bounds[scan_ord + 1]);
        scan_ord += 1;
        let run = &ctx.tids[b_lo..b_hi];
        stage[off..off + run.len()].copy_from_slice(run);
        req_counts[j] = run.len();
        off += run.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_routing_partitions_the_key_space() {
        let sp: Vec<Vec<u8>> = vec![b"f".to_vec(), b"p".to_vec()];
        // Shard s owns [splitter[s-1], splitter[s]): the boundary key
        // itself belongs to the upper shard.
        assert_eq!(shard_of_key(b"", &sp), 0);
        assert_eq!(shard_of_key(b"a", &sp), 0);
        assert_eq!(shard_of_key(b"ezzz", &sp), 0);
        assert_eq!(shard_of_key(b"f", &sp), 1);
        assert_eq!(shard_of_key(b"fa", &sp), 1);
        assert_eq!(shard_of_key(b"ozzz", &sp), 1);
        assert_eq!(shard_of_key(b"p", &sp), 2);
        assert_eq!(shard_of_key(b"\xff\xff", &sp), 2);
        // No partition: everything routes to shard 0.
        assert_eq!(shard_of_key(b"anything", &[]), 0);
    }

    #[test]
    fn quantile_splitters_balance_a_common_prefix_population() {
        // Every key shares a long prefix (the URL degeneracy that breaks
        // fixed prefix partitions): quantile splitters still cut the
        // population into near-equal ranges.
        let keys: Vec<Vec<u8>> = (0..1000)
            .map(|i| format!("https://example.com/item/{i:04}").into_bytes())
            .collect();
        let sorted: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let sp = splitters_from_sample(&sorted, 4);
        assert_eq!(sp.len(), 3);
        let mut counts = [0usize; 4];
        for k in &sorted {
            counts[shard_of_key(k, &sp)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        for &c in &counts {
            assert!((240..=260).contains(&c), "balanced quantiles: {counts:?}");
        }
    }

    #[test]
    fn duplicate_quantiles_collapse_instead_of_creating_empty_shards() {
        // A two-key sample cannot support 8 ranges; the duplicates
        // collapse so no splitter repeats (shards beyond the last
        // splitter simply stay empty).
        let sample: Vec<&[u8]> = vec![b"a", b"b"];
        let sp = splitters_from_sample(&sample, 8);
        assert_eq!(sp, vec![b"a".to_vec(), b"b".to_vec()]);
        // And an empty sample yields the trivial partition.
        assert!(splitters_from_sample(&[], 8).is_empty());
    }

    #[test]
    fn cross_shard_scans_concatenate_ranges() {
        use hot_keys::ArenaKeySource;

        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = (0..200u32).map(|i| format!("k{i:04}").into_bytes()).collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let sharded = ShardedHot::inline_router(Arc::new(arena), 4);
        let sorted: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        assert!(sharded.set_splitters(splitters_from_sample(&sorted, 4)));
        for (k, &t) in keys.iter().zip(&tids) {
            assert_eq!(sharded.insert(k, t), None);
        }
        for s in 0..4 {
            assert!(!sharded.shard(s).is_empty(), "every shard populated");
        }
        // Unbounded scan from the start: all TIDs, global key order.
        assert_eq!(sharded.scan(b"", 1000), tids);
        // Bounded scans crossing shard boundaries at every start point.
        for start in [0usize, 37, 49, 99, 151, 199] {
            let got = sharded.scan(&keys[start], 80);
            let want: Vec<u64> = tids[start..(start + 80).min(200)].to_vec();
            assert_eq!(got, want, "scan from {start}");
        }
    }

    #[test]
    fn env_shards_is_clamped() {
        // Cached process-wide; just exercise the accessor.
        if let Some(n) = env_shards() {
            assert!((1..=MAX_SHARDS).contains(&n));
        }
    }

    #[test]
    fn compiled_classifier_agrees_with_reference_on_adversarial_keys() {
        // Keys over a 3-symbol alphabet including 0x00 maximize shared
        // prefixes, embedded zeros, and prefix-of-another-key pairs — the
        // cases where the padded 8-byte discriminants tie and the
        // classification trie must fall back to exact resolution.
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move |bound: usize| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 33) as usize % bound
        };
        let alphabet = [0x00u8, b'a', b'b'];
        for _round in 0..50 {
            let mut pool: Vec<Vec<u8>> = (0..200)
                .map(|_| {
                    let len = 1 + next(24);
                    (0..len).map(|_| alphabet[next(3)]).collect()
                })
                .collect();
            pool.sort();
            pool.dedup();
            let mut splitters: Vec<Vec<u8>> = (0..1 + next(12))
                .map(|_| pool[next(pool.len())].clone())
                .collect();
            splitters.sort();
            splitters.dedup();
            let part = Partition::new(splitters.clone());
            for key in &pool {
                // `Partition::shard_of` debug_asserts agreement too, but
                // assert explicitly so release builds check as well.
                assert_eq!(
                    part.shard_of(key),
                    shard_of_key(key, &splitters),
                    "key {key:?} splitters {splitters:?}"
                );
            }
        }
    }
}
