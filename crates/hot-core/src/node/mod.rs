//! Physical node representation (Section 4 of the paper).
//!
//! epoch-exempt: node primitives borrow a `RawNode` the caller already
//! holds legitimately (epoch pin, node lock, private pre-publish build, or
//! quiescence) — liveness is established a layer above, in `sync.rs`.
//!
//! A HOT compound node linearizes a k-constrained binary Patricia trie into
//! one exact-size heap allocation holding four sections:
//!
//! ```text
//! ┌────────┬───────────────┬──────────────┬────────┐
//! │ header │ bit positions │ partial keys │ values │
//! └────────┴───────────────┴──────────────┴────────┘
//! ```
//!
//! * **header** — versioned lock word (used by the concurrent index), subtree
//!   height, entry count;
//! * **bit positions** — either a *single mask* (8-bit byte offset + 64-bit
//!   extraction mask over one 8-byte key window) or a *multi mask* (8, 16 or
//!   32 pairs of byte offset + 8-bit mask);
//! * **partial keys** — `n` *sparse partial keys* of 8, 16 or 32 bits;
//! * **values** — `n` 64-bit words: child pointers or tagged leaf TIDs.
//!
//! The 9 valid (mask representation × partial-key width) combinations are
//! the paper's 9 node layouts ([`NodeTag`]). The node type is encoded in the
//! low 5 bits of each (32-byte-aligned) node pointer so the type dispatch
//! overlaps the prefetch of the node body (Section 4.5).

pub mod builder;

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
// Lock words and value slots are ROWEX-protocol state: their atomics come
// from the shim so the loom models can instrument them. The MemCounter
// below intentionally stays on std atomics — allocation counters are not
// part of the protocol and would only blow up the model's state space.
use crate::sync_shim::{AtomicU32, AtomicU64, Ordering};
use std::sync::atomic::AtomicUsize;

use hot_bits::search::{PADDED_BYTES_U16, PADDED_BYTES_U32, PADDED_BYTES_U8};
use hot_keys::KEY_PAD_LEN;

/// Maximum compound-node fanout `k` (Section 4.1: "set the maximum fanout k
/// to 32, which is large enough to benefit from CPU caches and small enough
/// to support fast updates").
pub const MAX_FANOUT: usize = 32;

/// Maximum number of discriminative bit positions per node (`k - 1` BiNodes
/// always suffice to separate `k` keys).
pub const MAX_POSITIONS: usize = MAX_FANOUT - 1;

const LEAF_BIT: u64 = 1 << 63;
const TAG_MASK: u64 = 0x1F;
const HEADER_BYTES: usize = 8;
const NODE_ALIGN: usize = 32;

/// The nine physical node layouts of Figure 6: four bit-position
/// representations crossed with three partial-key widths, restricted to the
/// combinations that can actually occur (9–16 distinct key bytes imply at
/// least 9 discriminative bits, hence ≥ 16-bit partial keys, and so on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NodeTag {
    /// Single 64-bit mask, 8-bit partial keys.
    Single8 = 0,
    /// Single 64-bit mask, 16-bit partial keys.
    Single16 = 1,
    /// Single 64-bit mask, 32-bit partial keys.
    Single32 = 2,
    /// 8 offset/mask pairs, 8-bit partial keys.
    Multi8x8 = 3,
    /// 8 offset/mask pairs, 16-bit partial keys.
    Multi8x16 = 4,
    /// 8 offset/mask pairs, 32-bit partial keys.
    Multi8x32 = 5,
    /// 16 offset/mask pairs, 16-bit partial keys.
    Multi16x16 = 6,
    /// 16 offset/mask pairs, 32-bit partial keys.
    Multi16x32 = 7,
    /// 32 offset/mask pairs, 32-bit partial keys.
    Multi32x32 = 8,
}

/// Bit-position representation kind (first adaptivity dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskKind {
    /// One byte offset + one 64-bit mask over an 8-byte window.
    Single,
    /// `n` byte offsets, each with an 8-bit mask.
    Multi(usize),
}

impl NodeTag {
    /// All nine layouts, for exhaustive tests.
    pub const ALL: [NodeTag; 9] = [
        NodeTag::Single8,
        NodeTag::Single16,
        NodeTag::Single32,
        NodeTag::Multi8x8,
        NodeTag::Multi8x16,
        NodeTag::Multi8x32,
        NodeTag::Multi16x16,
        NodeTag::Multi16x32,
        NodeTag::Multi32x32,
    ];

    #[inline]
    pub(crate) fn from_u8(v: u8) -> NodeTag {
        debug_assert!(v <= 8);
        // SAFETY: NodeTag is repr(u8) with contiguous discriminants 0..=8
        // and every stored tag was produced from a NodeTag.
        unsafe { std::mem::transmute::<u8, NodeTag>(v) }
    }

    /// Partial-key width in bytes (1, 2 or 4).
    #[inline]
    pub fn key_width(self) -> usize {
        match self {
            NodeTag::Single8 | NodeTag::Multi8x8 => 1,
            NodeTag::Single16 | NodeTag::Multi8x16 | NodeTag::Multi16x16 => 2,
            NodeTag::Single32
            | NodeTag::Multi8x32
            | NodeTag::Multi16x32
            | NodeTag::Multi32x32 => 4,
        }
    }

    /// Bit-position representation.
    #[inline]
    pub fn mask_kind(self) -> MaskKind {
        match self {
            NodeTag::Single8 | NodeTag::Single16 | NodeTag::Single32 => MaskKind::Single,
            NodeTag::Multi8x8 | NodeTag::Multi8x16 | NodeTag::Multi8x32 => MaskKind::Multi(8),
            NodeTag::Multi16x16 | NodeTag::Multi16x32 => MaskKind::Multi(16),
            NodeTag::Multi32x32 => MaskKind::Multi(32),
        }
    }

    /// Choose the smallest layout able to represent `positions` (sorted
    /// ascending key-bit positions).
    pub fn choose(positions: &[u16]) -> NodeTag {
        debug_assert!(!positions.is_empty() && positions.len() <= MAX_POSITIONS);
        let bits = positions.len();
        let min_byte = positions[0] / 8;
        let max_byte = positions[positions.len() - 1] / 8;
        let single = max_byte - min_byte < 8;
        let distinct_bytes = {
            let mut count = 0usize;
            let mut last = u16::MAX;
            for &p in positions {
                if p / 8 != last {
                    count += 1;
                    last = p / 8;
                }
            }
            count
        };
        match (single, distinct_bytes, bits) {
            (true, _, b) if b <= 8 => NodeTag::Single8,
            (true, _, b) if b <= 16 => NodeTag::Single16,
            (true, _, _) => NodeTag::Single32,
            (false, d, b) if d <= 8 && b <= 8 => NodeTag::Multi8x8,
            (false, d, b) if d <= 8 && b <= 16 => NodeTag::Multi8x16,
            (false, d, _) if d <= 8 => NodeTag::Multi8x32,
            (false, d, b) if d <= 16 && b <= 16 => NodeTag::Multi16x16,
            (false, d, _) if d <= 16 => NodeTag::Multi16x32,
            _ => NodeTag::Multi32x32,
        }
    }

    fn mask_section_bytes(self) -> usize {
        match self.mask_kind() {
            MaskKind::Single => 16,               // u8 offset + pad + u64 mask
            MaskKind::Multi(n) => n + n,          // n offsets + n mask bytes
        }
    }

    fn simd_padding(self) -> usize {
        match self.key_width() {
            1 => PADDED_BYTES_U8,
            2 => PADDED_BYTES_U16,
            _ => PADDED_BYTES_U32,
        }
    }
}

/// Byte offsets of the node sections and the total allocation size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeGeometry {
    pub pkeys_offset: usize,
    pub values_offset: usize,
    pub alloc_size: usize,
}

pub(crate) fn geometry(tag: NodeTag, count: usize) -> NodeGeometry {
    debug_assert!((2..=MAX_FANOUT).contains(&count));
    let pkeys_offset = HEADER_BYTES + tag.mask_section_bytes();
    let pkeys_end = pkeys_offset + count * tag.key_width();
    let values_offset = (pkeys_end + 7) & !7;
    let logical_end = values_offset + count * 8;
    // The SIMD search reads full vectors from the partial-key base; make
    // sure those reads stay inside the allocation (the values section
    // usually covers it already).
    let simd_end = pkeys_offset + tag.simd_padding();
    let alloc_size = (logical_end.max(simd_end) + (NODE_ALIGN - 1)) & !(NODE_ALIGN - 1);
    NodeGeometry {
        pkeys_offset,
        values_offset,
        alloc_size,
    }
}

/// Geometry of the arena-backed *compact* layout (DESIGN.md §16): identical
/// header, mask and partial-key sections — so every mask/partial-key
/// accessor on [`RawNode`] works unchanged — but value slots are 32-bit
/// arena references, and the allocation is 8-byte-granular (the tag lives
/// in the offset word, so the 32-byte pointer-tag alignment is not needed).
pub(crate) fn geometry_compact(tag: NodeTag, count: usize) -> NodeGeometry {
    debug_assert!((2..=MAX_FANOUT).contains(&count));
    let pkeys_offset = HEADER_BYTES + tag.mask_section_bytes();
    let pkeys_end = pkeys_offset + count * tag.key_width();
    let values_offset = (pkeys_end + 3) & !3;
    let logical_end = values_offset + count * 4;
    // Same SIMD-overread reservation as the heap layout.
    let simd_end = pkeys_offset + tag.simd_padding();
    let alloc_size = (logical_end.max(simd_end) + 7) & !7;
    NodeGeometry {
        pkeys_offset,
        values_offset,
        alloc_size,
    }
}

// ---- node allocator ---------------------------------------------------------
//
// Copy-on-write makes node allocation/free the hottest allocator traffic in
// the system, always in 32-byte-granular sizes between 64 and ~1.5 KiB. A
// small per-thread free list recycles blocks per size class: it avoids the
// general allocator on the hot path and — more importantly — hands back
// recently-freed, cache-warm blocks.

const SIZE_CLASS: usize = NODE_ALIGN; // 32-byte granularity
const NUM_CLASSES: usize = 48; // up to 1536-byte nodes
const PER_CLASS_CAP: usize = 64;

struct FreeLists {
    classes: [Vec<*mut u8>; NUM_CLASSES],
}

impl FreeLists {
    fn new() -> FreeLists {
        FreeLists {
            classes: std::array::from_fn(|_| Vec::new()),
        }
    }
}

impl Drop for FreeLists {
    fn drop(&mut self) {
        for (class, list) in self.classes.iter_mut().enumerate() {
            let size = class * SIZE_CLASS;
            for &ptr in list.iter() {
                // SAFETY: every cached block was allocated with exactly this
                // (size, align) layout and is owned by the list.
                unsafe {
                    dealloc(
                        ptr,
                        Layout::from_size_align(size, NODE_ALIGN).expect("cached layout"),
                    )
                };
            }
            list.clear();
        }
    }
}

thread_local! {
    static FREE_LISTS: RefCell<FreeLists> = RefCell::new(FreeLists::new());
}

/// Allocate a node-sized block (multiple of 32, 32-aligned) with the first
/// header word zeroed.
fn alloc_block(size: usize) -> *mut u8 {
    debug_assert_eq!(size % SIZE_CLASS, 0);
    let class = size / SIZE_CLASS;
    if class < NUM_CLASSES {
        // try_with: thread-local storage may already be torn down when
        // epoch-deferred work runs during thread exit.
        if let Some(ptr) =
            FREE_LISTS.try_with(|fl| fl.borrow_mut().classes[class].pop()).ok().flatten()
        {
            // Recycled blocks contain stale bytes; the header (lock word,
            // height, count) must start clean — everything else is fully
            // overwritten by `fill` or masked off by the used-entry count.
            // SAFETY: block is `size` bytes, 8-aligned.
            unsafe { *(ptr as *mut u64) = 0 };
            return ptr;
        }
    }
    let layout = Layout::from_size_align(size, NODE_ALIGN).expect("node layout");
    // SAFETY: non-zero size.
    let ptr = unsafe { alloc_zeroed(layout) };
    assert!(!ptr.is_null(), "node allocation failed");
    ptr
}

/// Return a node-sized block to the per-thread cache (or the allocator).
///
/// # Safety
/// `ptr` must come from [`alloc_block`] with the same `size` and must not be
/// referenced anymore.
unsafe fn free_block(ptr: *mut u8, size: usize) {
    let class = size / SIZE_CLASS;
    if class < NUM_CLASSES {
        // try_with: see alloc_block — deferred frees may run at thread exit.
        let cached = FREE_LISTS
            .try_with(|fl| {
                let mut fl = fl.borrow_mut();
                if fl.classes[class].len() < PER_CLASS_CAP {
                    fl.classes[class].push(ptr);
                    true
                } else {
                    false
                }
            })
            .unwrap_or(false);
        if cached {
            return;
        }
    }
    // SAFETY: caller guarantees `ptr`/`size` match the original
    // `alloc_block` call, which used this same layout computation.
    unsafe {
        dealloc(ptr, Layout::from_size_align(size, NODE_ALIGN).expect("node layout"));
    }
}

/// Free a node for benchmarking purposes only.
///
/// # Safety
/// `r` must be an unpublished node reference created by `Builder::encode`.
#[doc(hidden)]
pub unsafe fn free_for_bench(r: NodeRef, mem: &MemCounter) {
    // SAFETY: caller guarantees `r` is unpublished, so no other reference
    // exists (the contract of `RawNode::free`).
    unsafe { r.as_raw().free(mem) };
}

/// Allocation accounting shared by a tree instance (Figure 9's
/// "custom code to compute the memory consumption").
#[derive(Debug, Default)]
pub struct MemCounter {
    bytes: AtomicUsize,
    nodes: AtomicUsize,
}

impl MemCounter {
    /// Current live node bytes.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Current live node count.
    pub fn nodes(&self) -> usize {
        self.nodes.load(Ordering::Relaxed)
    }

    fn on_alloc(&self, size: usize) {
        self.bytes.fetch_add(size, Ordering::Relaxed);
        self.nodes.fetch_add(1, Ordering::Relaxed);
    }

    fn on_free(&self, size: usize) {
        self.bytes.fetch_sub(size, Ordering::Relaxed);
        self.nodes.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A tagged 64-bit tree word: null, leaf TID (bit 63 set) or node pointer
/// with the [`NodeTag`] in the low 5 bits (Section 4.2: "we distinguish
/// between a pointer and a tuple identifier using the most-significant bit";
/// Section 4.5: "we encode the node type within the least-significant bits
/// of each node pointer").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef(pub u64);

impl NodeRef {
    /// The null reference (empty tree).
    pub const NULL: NodeRef = NodeRef(0);

    /// Tag a tuple identifier as a leaf word.
    #[inline]
    pub fn leaf(tid: u64) -> NodeRef {
        debug_assert!(tid & LEAF_BIT == 0, "tid must fit in 63 bits");
        NodeRef(tid | LEAF_BIT)
    }

    #[inline]
    pub(crate) fn node(ptr: *mut u8, tag: NodeTag) -> NodeRef {
        debug_assert_eq!(ptr as u64 & TAG_MASK, 0, "node pointers are 32-byte aligned");
        NodeRef(ptr as u64 | tag as u64)
    }

    /// Is this the null reference?
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Is this a leaf TID?
    #[inline]
    pub fn is_leaf(self) -> bool {
        self.0 & LEAF_BIT != 0
    }

    /// Is this a compound-node pointer?
    #[inline]
    pub fn is_node(self) -> bool {
        !self.is_leaf() && !self.is_null()
    }

    /// The tuple identifier of a leaf word.
    #[inline]
    pub fn tid(self) -> u64 {
        debug_assert!(self.is_leaf());
        self.0 & !LEAF_BIT
    }

    #[inline]
    pub(crate) fn tag(self) -> NodeTag {
        debug_assert!(self.is_node());
        NodeTag::from_u8((self.0 & TAG_MASK) as u8)
    }

    #[inline]
    pub(crate) fn ptr(self) -> *mut u8 {
        debug_assert!(self.is_node());
        (self.0 & !TAG_MASK) as *mut u8
    }

    /// View as a raw node. Caller must know this is a node reference.
    #[inline]
    pub(crate) fn as_raw(self) -> RawNode {
        debug_assert!(self.is_node());
        RawNode {
            base: self.ptr(),
            tag: self.tag(),
        }
    }
}

/// Typed view over one node allocation.
#[derive(Clone, Copy)]
pub(crate) struct RawNode {
    pub base: *mut u8,
    pub tag: NodeTag,
}

impl RawNode {
    /// Allocate a node with a clean header for the given entry count and
    /// height. Mask, partial-key and value sections must be fully written by
    /// `fill` before the node is published.
    pub fn alloc(tag: NodeTag, count: usize, height: u8, mem: &MemCounter) -> RawNode {
        let geo = geometry(tag, count);
        let base = alloc_block(geo.alloc_size);
        mem.on_alloc(geo.alloc_size);
        let node = RawNode { base, tag };
        // SAFETY: freshly allocated, exclusively owned.
        unsafe {
            *node.count_ptr() = count as u8;
            *node.height_ptr() = height;
        }
        node
    }

    /// Free this node.
    ///
    /// # Safety
    /// Caller must guarantee no other references exist (or, in the
    /// concurrent index, that the epoch guarantees it).
    pub unsafe fn free(self, mem: &MemCounter) {
        let geo = geometry(self.tag, self.count());
        mem.on_free(geo.alloc_size);
        // SAFETY: `base` came from `alloc_block(geo.alloc_size)` (same tag
        // and count, hence same size), and the caller guarantees no other
        // reference to this node remains.
        unsafe { free_block(self.base, geo.alloc_size) };
    }

    /// Size of this node's allocation in bytes.
    #[allow(dead_code)] // used by the concurrent index
    pub fn alloc_size(self) -> usize {
        geometry(self.tag, self.count()).alloc_size
    }

    #[inline]
    fn count_ptr(self) -> *mut u8 {
        // Header layout: [lock: u32][height: u8][count: u8][pad: u16]
        // SAFETY: within the 8-byte header.
        unsafe { self.base.add(5) }
    }

    #[inline]
    fn height_ptr(self) -> *mut u8 {
        // SAFETY: within the 8-byte header.
        unsafe { self.base.add(4) }
    }

    /// The versioned lock word (used only by the concurrent index).
    #[allow(dead_code)] // used by the concurrent index
    #[inline]
    pub fn lock_word(self) -> &'static AtomicU32 {
        // SAFETY: the first 4 bytes of the header are the lock word, aligned
        // to 4 (node base is 32-byte aligned). Lifetime is managed by the
        // epoch scheme; callers never hold the reference past the node. The
        // cast is valid in loom-model builds too: the shim's AtomicU32 is
        // guaranteed #[repr(transparent)] over std's (asserted by
        // sync_shim::tests::layout_matches_std).
        unsafe { &*(self.base as *const AtomicU32) }
    }

    /// Number of entries (2..=32).
    #[inline]
    pub fn count(self) -> usize {
        // SAFETY: header is always initialized.
        unsafe { *self.count_ptr() as usize }
    }

    /// Compound-subtree height (1 = all entries are leaves).
    #[inline]
    pub fn height(self) -> u8 {
        // SAFETY: header is always initialized.
        unsafe { *self.height_ptr() }
    }

    #[allow(dead_code)] // used by the concurrent index
    #[inline]
    pub fn set_height(self, h: u8) {
        // SAFETY: header is always initialized; only called during build or
        // under the node lock.
        unsafe { *self.height_ptr() = h }
    }

    // ---- mask section accessors -------------------------------------------------

    /// Single-mask: the starting byte offset.
    #[inline]
    fn single_offset(self) -> usize {
        // SAFETY: single-mask section starts right after the header.
        unsafe { *self.base.add(HEADER_BYTES) as usize }
    }

    /// Single-mask: the 64-bit extraction mask (in big-endian window space).
    #[inline]
    fn single_mask(self) -> u64 {
        // SAFETY: mask is at header + 8, 8-byte aligned.
        unsafe { *(self.base.add(HEADER_BYTES + 8) as *const u64) }
    }

    #[inline]
    fn set_single(self, offset: u8, mask: u64) {
        // SAFETY: exclusively owned during build.
        unsafe {
            *self.base.add(HEADER_BYTES) = offset;
            *(self.base.add(HEADER_BYTES + 8) as *mut u64) = mask;
        }
    }

    /// Multi-mask: the byte-offset array (width = slot count).
    #[inline]
    fn multi_offsets(self, slots: usize) -> &'static [u8] {
        // SAFETY: offsets start right after the header, `slots` bytes.
        unsafe { std::slice::from_raw_parts(self.base.add(HEADER_BYTES), slots) }
    }

    /// Multi-mask: the mask words; word `w` packs mask bytes of slots
    /// `8w..8w+8` big-endian (slot `8w` in the most significant byte), so
    /// a PEXT over the correspondingly gathered key bytes emits bits in
    /// global position order.
    #[inline]
    fn multi_mask_word(self, slots: usize, w: usize) -> u64 {
        // SAFETY: mask words follow the offsets array (8-byte aligned since
        // slots is 8, 16 or 32 and the header is 8 bytes).
        unsafe { *(self.base.add(HEADER_BYTES + slots) as *const u64).add(w) }
    }

    #[inline]
    fn set_multi(self, offsets: &[u8], mask_bytes: &[u8]) {
        let slots = offsets.len();
        debug_assert_eq!(mask_bytes.len(), slots);
        // SAFETY: exclusively owned during build; section is `2 * slots`.
        unsafe {
            std::ptr::copy_nonoverlapping(offsets.as_ptr(), self.base.add(HEADER_BYTES), slots);
            let words = self.base.add(HEADER_BYTES + slots) as *mut u64;
            for w in 0..slots / 8 {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&mask_bytes[w * 8..w * 8 + 8]);
                *words.add(w) = u64::from_be_bytes(bytes);
            }
        }
    }

    // ---- partial keys and values ------------------------------------------------

    #[inline]
    pub fn pkeys_base(self) -> *mut u8 {
        // SAFETY: offset computed from the node's own geometry.
        unsafe { self.base.add(geometry(self.tag, self.count()).pkeys_offset) }
    }

    #[inline]
    pub fn values_ptr(self) -> *const AtomicU64 {
        // SAFETY: offset computed from the node's own geometry; the values
        // section is 8-byte aligned.
        unsafe {
            self.base.add(geometry(self.tag, self.count()).values_offset) as *const AtomicU64
        }
    }

    /// Load the value word of entry `i`.
    ///
    /// Ordering: **Acquire** — pairs with the **Release** in [`store_value`].
    /// A reader that observes a COW replacement's pointer therefore observes
    /// the replacement node's fully written body.
    #[inline]
    pub fn value(self, i: usize) -> NodeRef {
        debug_assert!(i < self.count());
        // SAFETY: i < count; values are initialized at build time.
        // pairs-with: value-slot
        NodeRef(unsafe { (*self.values_ptr().add(i)).load(Ordering::Acquire) })
    }

    /// Store the value word of entry `i` (the "single pointer swap" that
    /// publishes copy-on-write replacements).
    ///
    /// Ordering: **Release** — all plain stores that filled the new node
    /// happen-before this store; pairs with the **Acquire** in [`value`].
    #[inline]
    pub fn store_value(self, i: usize, v: NodeRef) {
        debug_assert!(i < self.count());
        // SAFETY: i < count.
        // pairs-with: value-slot
        unsafe { (*self.values_ptr().add(i)).store(v.0, Ordering::Release) }
    }

    // ---- compact (arena) value slots --------------------------------------------
    //
    // A compact node shares header/mask/partial-key sections with the heap
    // layout byte for byte; only the value section differs (32-bit arena
    // references at a 4-byte-aligned offset). `RawNode` views over arena
    // memory therefore reuse every accessor above and switch only the
    // value-slot functions below.

    /// Initialize the header of a freshly arena-allocated compact node.
    /// The caller owns the block exclusively until publication.
    pub(crate) fn init_header(self, count: usize, height: u8) {
        // SAFETY: the arena handed out an exclusively owned, 8-aligned block
        // covering at least the 8-byte header.
        unsafe {
            *(self.base as *mut u64) = 0;
            *self.count_ptr() = count as u8;
            *self.height_ptr() = height;
        }
    }

    #[inline]
    pub(crate) fn cvalues_ptr(self) -> *const AtomicU32 {
        // SAFETY: offset computed from the node's own compact geometry; the
        // compact value section is 4-byte aligned (8-aligned base).
        unsafe {
            self.base.add(geometry_compact(self.tag, self.count()).values_offset)
                as *const AtomicU32
        }
    }

    /// Load the compact value word of entry `i` (32-bit arena reference).
    ///
    /// Ordering: **Acquire** — pairs with the **Release** in
    /// [`store_cvalue`](Self::store_cvalue); a reader that observes a COW
    /// replacement's offset observes the replacement node's fully written
    /// arena bytes.
    #[inline]
    pub fn cvalue(self, i: usize) -> u32 {
        debug_assert!(i < self.count());
        // SAFETY: i < count; compact values are initialized at build time.
        // pairs-with: cvalue-slot
        unsafe { (*self.cvalues_ptr().add(i)).load(Ordering::Acquire) }
    }

    /// Store the compact value word of entry `i` — the single offset swap
    /// publishing a compact COW replacement.
    ///
    /// Ordering: **Release** — all plain stores that filled the new arena
    /// node happen-before this store; pairs with the **Acquire** in
    /// [`cvalue`](Self::cvalue).
    #[inline]
    pub fn store_cvalue(self, i: usize, v: u32) {
        debug_assert!(i < self.count());
        // SAFETY: i < count.
        // pairs-with: cvalue-slot
        unsafe { (*self.cvalues_ptr().add(i)).store(v, Ordering::Release) }
    }

    /// Bulk-read a compact node's sparse keys and value words (widened to
    /// the builder's u64 word space) — the compact analogue of
    /// [`read_entries`](Self::read_entries).
    pub fn read_entries_compact(self, sparse: &mut Vec<u32>, values: &mut Vec<u64>) {
        let n = self.count();
        sparse.clear();
        values.clear();
        let base = self.pkeys_base();
        // SAFETY: the partial-key section holds `count` entries of the
        // tag's width; compact values are initialized.
        unsafe {
            match self.tag.key_width() {
                1 => sparse.extend(std::slice::from_raw_parts(base, n).iter().map(|&k| k as u32)),
                2 => sparse.extend(
                    std::slice::from_raw_parts(base as *const u16, n)
                        .iter()
                        .map(|&k| k as u32),
                ),
                _ => sparse.extend_from_slice(std::slice::from_raw_parts(base as *const u32, n)),
            }
            let vals = self.cvalues_ptr();
            values.extend((0..n).map(|i| (*vals.add(i)).load(Ordering::Relaxed) as u64));
        }
    }

    /// The sparse partial key of entry `i`, widened to u32.
    #[inline]
    pub fn sparse_key(self, i: usize) -> u32 {
        debug_assert!(i < self.count());
        let base = self.pkeys_base();
        // SAFETY: i < count and the partial-key section holds `count`
        // entries of the tag's width.
        unsafe {
            match self.tag.key_width() {
                1 => *base.add(i) as u32,
                2 => *(base as *const u16).add(i) as u32,
                _ => *(base as *const u32).add(i),
            }
        }
    }

    // ---- search -------------------------------------------------------------------

    /// Extract the dense partial key of `key` for this node's bit positions.
    #[inline]
    pub fn extract_dense(self, key: &[u8; KEY_PAD_LEN]) -> u32 {
        match self.tag.mask_kind() {
            MaskKind::Single => {
                let window = hot_bits::load_be_u64(key, self.single_offset());
                hot_bits::pext64(window, self.single_mask()) as u32
            }
            MaskKind::Multi(slots) => {
                let offsets = self.multi_offsets(slots);
                let mut dense: u64 = 0;
                for w in 0..slots / 8 {
                    let mut gathered = [0u8; 8];
                    for s in 0..8 {
                        gathered[s] = key[offsets[w * 8 + s] as usize];
                    }
                    let word = u64::from_be_bytes(gathered);
                    let mask = self.multi_mask_word(slots, w);
                    dense = (dense << mask.count_ones()) | hot_bits::pext64(word, mask);
                }
                dense as u32
            }
        }
    }

    /// Intra-node search: index of the result candidate for `dense`
    /// (highest-index subset match; Listing 2's `searchPartialKeys*`).
    #[inline]
    pub fn search(self, dense: u32) -> usize {
        let n = self.count();
        let base = self.pkeys_base();
        // SAFETY: the allocation reserves the SIMD padding behind the
        // partial-key section (see `geometry`) and n is in 2..=32.
        unsafe {
            match self.tag.key_width() {
                1 => hot_bits::search_subset_u8(base, n, dense as u8),
                2 => hot_bits::search_subset_u16(base as *const u16, n, dense as u16),
                _ => hot_bits::search_subset_u32(base as *const u32, n, dense),
            }
        }
    }

    /// One descent step: extract, search, return (entry index, value word).
    #[inline]
    pub fn find_candidate(self, key: &[u8; KEY_PAD_LEN]) -> (usize, NodeRef) {
        let dense = self.extract_dense(key);
        let idx = self.search(dense);
        (idx, self.value(idx))
    }

    /// Smallest discriminative bit position — the position of this node's
    /// root BiNode (positions strictly increase along every path, so the
    /// minimum over the node is attained at its root BiNode).
    #[inline]
    pub fn min_position(self) -> u16 {
        match self.tag.mask_kind() {
            MaskKind::Single => {
                let mask = self.single_mask();
                debug_assert!(mask != 0);
                (self.single_offset() * 8) as u16 + mask.leading_zeros() as u16
            }
            MaskKind::Multi(slots) => {
                // Slot 0 holds the smallest byte offset; its most significant
                // mask bit is the smallest position.
                let offsets = self.multi_offsets(slots);
                let byte0 = (self.multi_mask_word(slots, 0) >> 56) as u8;
                debug_assert!(byte0 != 0);
                (offsets[0] as u16) * 8 + byte0.leading_zeros() as u16
            }
        }
    }

    /// Decode the sorted discriminative bit positions (inverse of the mask
    /// encoding; used by structure modifications and invariant checks).
    pub fn positions(self) -> Vec<u16> {
        let mut out = Vec::new();
        self.positions_into(&mut out);
        out
    }

    /// Bulk-read all sparse keys (widened) and value words into the given
    /// buffers — one width dispatch instead of one per entry.
    pub fn read_entries(self, sparse: &mut Vec<u32>, values: &mut Vec<u64>) {
        let n = self.count();
        sparse.clear();
        values.clear();
        let base = self.pkeys_base();
        // SAFETY: the partial-key section holds `count` entries of the
        // tag's width; values are initialized.
        unsafe {
            match self.tag.key_width() {
                1 => sparse.extend(std::slice::from_raw_parts(base, n).iter().map(|&k| k as u32)),
                2 => sparse.extend(
                    std::slice::from_raw_parts(base as *const u16, n)
                        .iter()
                        .map(|&k| k as u32),
                ),
                _ => sparse.extend_from_slice(std::slice::from_raw_parts(base as *const u32, n)),
            }
            let vals = self.values_ptr();
            values.extend((0..n).map(|i| (*vals.add(i)).load(Ordering::Relaxed)));
        }
    }

    /// Number of discriminative positions strictly below `pos`, and the
    /// total position count — computed directly from the mask encoding
    /// (no allocation; used by the hot insert/scan paths).
    pub fn rank_and_total(self, pos: usize) -> (usize, usize) {
        match self.tag.mask_kind() {
            MaskKind::Single => {
                let mask = self.single_mask();
                let m = mask.count_ones() as usize;
                let base = self.single_offset() * 8;
                if pos <= base {
                    return (0, m);
                }
                let rel = pos - base;
                if rel >= 64 {
                    return (m, m);
                }
                // Positions below `pos` occupy window bits above 63-rel.
                ((mask >> (64 - rel)).count_ones() as usize, m)
            }
            MaskKind::Multi(slots) => {
                let offsets = self.multi_offsets(slots);
                let byte_pos = pos / 8;
                let bit_in_byte = pos % 8;
                let mut rank = 0usize;
                let mut total = 0usize;
                for (s, &offset) in offsets.iter().enumerate() {
                    let word = self.multi_mask_word(slots, s / 8);
                    let mask_byte = (word >> (8 * (7 - s % 8))) as u8;
                    if mask_byte == 0 {
                        continue;
                    }
                    let ones = mask_byte.count_ones() as usize;
                    total += ones;
                    let b = offset as usize;
                    if b < byte_pos {
                        rank += ones;
                    } else if b == byte_pos && bit_in_byte > 0 {
                        // Key bits i < bit_in_byte live in mask-byte bits
                        // above (7 - bit_in_byte).
                        rank += (mask_byte >> (8 - bit_in_byte)).count_ones() as usize;
                    }
                }
                (rank, total)
            }
        }
    }

    /// Like [`Self::rank_and_total`], additionally reporting whether `pos`
    /// itself is already a discriminative position.
    pub fn rank_total_contains(self, pos: usize) -> (usize, usize, bool) {
        let (rank, total) = self.rank_and_total(pos);
        let contains = match self.tag.mask_kind() {
            MaskKind::Single => {
                let base = self.single_offset() * 8;
                pos >= base
                    && pos < base + 64
                    && self.single_mask() & (1u64 << (63 - (pos - base))) != 0
            }
            MaskKind::Multi(slots) => {
                let byte = (pos / 8) as u8;
                let bit = 1u8 << (7 - pos % 8);
                let offsets = self.multi_offsets(slots);
                (0..slots).any(|sl| {
                    let word = self.multi_mask_word(slots, sl / 8);
                    let mask_byte = (word >> (8 * (7 - sl % 8))) as u8;
                    mask_byte != 0 && offsets[sl] == byte && mask_byte & bit != 0
                })
            }
        };
        (rank, total, contains)
    }

    /// Fused copy-on-write insert fast path (the common normal-insert case).
    ///
    /// Builds the new node directly from this node's physical layout when
    /// the layout is structurally stable: the node is not full, the
    /// partial-key width does not change, and the new position either
    /// already exists, fits the single-mask window, or lands in an existing
    /// multi-mask byte slot. Returns `None` when any of that fails — the
    /// caller falls back to the general builder path.
    ///
    /// `lo..=hi` is the affected entry range, `key_bit` the new key's bit at
    /// `pos`, `leaf` the new entry's value word.
    pub fn insert_entry_cow(
        self,
        pos: usize,
        lo: usize,
        hi: usize,
        key_bit: u8,
        leaf: u64,
        mem: &MemCounter,
    ) -> Option<NodeRef> {
        let n = self.count();
        if n >= MAX_FANOUT {
            return None; // overflow: the builder/split path handles it
        }
        let (rank, m, contains) = self.rank_total_contains(pos);
        let new_m = m + usize::from(!contains);
        let width = self.tag.key_width();
        let new_width = match new_m {
            0..=8 => 1,
            9..=16 => 2,
            _ => 4,
        };
        if new_width != width {
            return None;
        }

        // Work out the (possibly) updated mask section.
        enum MaskPatch {
            None,
            Single(u64),
            Multi { slot: usize, byte_mask: u8 },
        }
        let patch = if contains {
            MaskPatch::None
        } else {
            match self.tag.mask_kind() {
                MaskKind::Single => {
                    let base = self.single_offset() * 8;
                    if pos < base || pos >= base + 64 {
                        return None; // window must grow: builder path
                    }
                    MaskPatch::Single(self.single_mask() | (1u64 << (63 - (pos - base))))
                }
                MaskKind::Multi(slots) => {
                    let byte = (pos / 8) as u8;
                    let offsets = self.multi_offsets(slots);
                    let mut found = None;
                    for (sl, &off) in offsets.iter().enumerate() {
                        let word = self.multi_mask_word(slots, sl / 8);
                        let mask_byte = (word >> (8 * (7 - sl % 8))) as u8;
                        if mask_byte != 0 && off == byte {
                            found = Some((sl, mask_byte | (1u8 << (7 - pos % 8))));
                            break;
                        }
                    }
                    match found {
                        Some((slot, byte_mask)) => MaskPatch::Multi { slot, byte_mask },
                        None => return None, // new byte slot: builder path
                    }
                }
            }
        };

        let e = (new_m - 1 - rank) as u32; // extracted bit of `pos`
        let deposit = if contains {
            0 // no recode
        } else {
            (((1u64 << new_m) - 1) & !(1u64 << e)) as u32
        };
        let at = if key_bit == 1 { hi + 1 } else { lo };

        let node = RawNode::alloc(self.tag, n + 1, self.height(), mem);
        // Copy the mask section (between header and pkeys) verbatim, then
        // apply the one-bit patch.
        let geo = geometry(self.tag, n + 1);
        // SAFETY: both nodes share the tag; the mask section lies between
        // the 8-byte header and the partial keys and has identical extent.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.add(HEADER_BYTES),
                node.base.add(HEADER_BYTES),
                geo.pkeys_offset - HEADER_BYTES,
            );
        }
        match patch {
            MaskPatch::None => {}
            MaskPatch::Single(mask) => {
                // SAFETY: single-mask word sits at header + 8.
                unsafe { *(node.base.add(HEADER_BYTES + 8) as *mut u64) = mask };
            }
            MaskPatch::Multi { slot, byte_mask } => {
                let MaskKind::Multi(slots) = self.tag.mask_kind() else {
                    unreachable!()
                };
                // SAFETY: mask words follow the offsets array.
                unsafe {
                    let word_ptr =
                        (node.base.add(HEADER_BYTES + slots) as *mut u64).add(slot / 8);
                    let shift = 8 * (7 - slot % 8);
                    let cleared = *word_ptr & !(0xFFu64 << shift);
                    *word_ptr = cleared | ((byte_mask as u64) << shift);
                }
            }
        }

        // Transform + insert the sparse partial keys in one pass.
        let transform = |v: u32, idx: usize| -> u32 {
            let mut v = if contains {
                v
            } else {
                hot_bits::pdep64(v as u64, deposit as u64) as u32
            };
            if key_bit == 0 && (lo..=hi).contains(&idx) {
                v |= 1 << e;
            }
            v
        };
        // The new entry shares the path prefix (bits above `e`) with the
        // affected subtree; take it from the transformed `lo` entry before
        // its inverse-bit patch — i.e. from the recoded-only value.
        let prefix_mask = if e as usize + 1 >= 32 {
            0
        } else {
            !((2u32 << e) - 1)
        };
        let lo_recoded = if contains {
            self.sparse_key(lo)
        } else {
            hot_bits::pdep64(self.sparse_key(lo) as u64, deposit as u64) as u32
        };
        let new_sparse = (lo_recoded & prefix_mask) | ((key_bit as u32) << e);

        let src = self.pkeys_base();
        let dst = node.pkeys_base();
        // SAFETY: source holds n entries, destination n+1, both of `width`.
        unsafe {
            match width {
                1 => {
                    for i in 0..n + 1 {
                        let v = match i.cmp(&at) {
                            std::cmp::Ordering::Less => transform(*src.add(i) as u32, i),
                            std::cmp::Ordering::Equal => new_sparse,
                            std::cmp::Ordering::Greater => transform(*src.add(i - 1) as u32, i - 1),
                        };
                        *dst.add(i) = v as u8;
                    }
                }
                2 => {
                    let (src, dst) = (src as *const u16, dst as *mut u16);
                    for i in 0..n + 1 {
                        let v = match i.cmp(&at) {
                            std::cmp::Ordering::Less => transform(*src.add(i) as u32, i),
                            std::cmp::Ordering::Equal => new_sparse,
                            std::cmp::Ordering::Greater => transform(*src.add(i - 1) as u32, i - 1),
                        };
                        *dst.add(i) = v as u16;
                    }
                }
                _ => {
                    let (src, dst) = (src as *const u32, dst as *mut u32);
                    for i in 0..n + 1 {
                        let v = match i.cmp(&at) {
                            std::cmp::Ordering::Less => transform(*src.add(i), i),
                            std::cmp::Ordering::Equal => new_sparse,
                            std::cmp::Ordering::Greater => transform(*src.add(i - 1), i - 1),
                        };
                        *dst.add(i) = v;
                    }
                }
            }
            // Values: two block copies around the hole.
            let vsrc = self.values_ptr() as *const u64;
            let vdst = node.values_ptr() as *mut u64;
            std::ptr::copy_nonoverlapping(vsrc, vdst, at);
            *vdst.add(at) = leaf;
            std::ptr::copy_nonoverlapping(vsrc.add(at), vdst.add(at + 1), n - at);
        }
        Some(NodeRef::node(node.base, self.tag))
    }

    /// The contiguous run of entries in the subtree that a (possibly new)
    /// discriminative bit at `pos` would split, on the path through entry
    /// `through` (see `builder` module docs for the correctness argument).
    pub fn affected_range(self, pos: usize, through: usize) -> (usize, usize) {
        let (rank, m) = self.rank_and_total(pos);
        let mask = if rank == 0 {
            0u32
        } else {
            (((1u64 << rank) - 1) << (m - rank)) as u32
        };
        let prefix = self.sparse_key(through) & mask;
        let n = self.count();
        let base = self.pkeys_base();
        // One SIMD compare replaces the scalar two-direction narrowing walk:
        // bit i of `matches` is set iff entry i shares the path prefix above
        // `pos` (the range-scan seek and the insert path both call this on a
        // hot path).
        // SAFETY: the allocation reserves the SIMD padding behind the
        // partial-key section (see `geometry`) and n is in 1..=32.
        let matches = unsafe {
            match self.tag.key_width() {
                1 => hot_bits::match_prefix_u8(base, n, mask as u8, prefix as u8),
                2 => hot_bits::match_prefix_u16(base as *const u16, n, mask as u16, prefix as u16),
                _ => hot_bits::match_prefix_u32(base as *const u32, n, mask, prefix),
            }
        };
        debug_assert!(matches & (1 << through) != 0, "member entry matches itself");
        // The affected range is the maximal run of consecutive matches
        // containing `through` (matching entries are contiguous in a
        // well-formed node — the subtree below `pos` is one in-order run —
        // but computing the run keeps the result identical to the scalar
        // narrowing even on a transiently inconsistent concurrent read).
        let above = !matches >> through;
        let hi = (through + above.trailing_zeros() as usize - 1).min(n - 1);
        let below = !matches << (31 - through);
        let lo = through + 1 - (below.leading_zeros() as usize).min(through + 1);
        (lo, hi)
    }

    /// Like [`Self::positions`], reusing the caller's buffer.
    pub fn positions_into(self, out: &mut Vec<u16>) {
        out.clear();
        match self.tag.mask_kind() {
            MaskKind::Single => {
                let offset = self.single_offset();
                let mask = self.single_mask();
                for j in (0..64).rev() {
                    if mask & (1u64 << j) != 0 {
                        out.push((offset * 8 + 63 - j) as u16);
                    }
                }
            }
            MaskKind::Multi(slots) => {
                let offsets = self.multi_offsets(slots);
                for (s, &offset) in offsets.iter().enumerate() {
                    let word = self.multi_mask_word(slots, s / 8);
                    let byte = (word >> (8 * (7 - s % 8))) as u8;
                    if byte == 0 {
                        continue;
                    }
                    for i in 0..8 {
                        if byte & (1 << (7 - i)) != 0 {
                            out.push(offset as u16 * 8 + i as u16);
                        }
                    }
                }
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "positions sorted");
    }

    /// Write the full node contents from decoded parts (build time only).
    pub(crate) fn fill(
        self,
        positions: &[u16],
        sparse: &[u32],
        values: &[u64],
    ) {
        debug_assert_eq!(sparse.len(), values.len());
        debug_assert_eq!(self.count(), values.len());
        self.fill_masks_pkeys(positions, sparse);
        // SAFETY: exclusively owned during build; the values section holds
        // `count` u64 slots per the heap geometry.
        unsafe {
            std::ptr::copy_nonoverlapping(
                values.as_ptr(),
                self.values_ptr() as *mut u64,
                values.len(),
            );
        }
    }

    /// Compact-layout twin of [`fill`](Self::fill): identical mask and
    /// partial-key sections, 32-bit value slots at the compact offset. The
    /// value words must already be valid `CRef` bit patterns (≤ 32 bits).
    pub(crate) fn fill_compact(
        self,
        positions: &[u16],
        sparse: &[u32],
        values: &[u64],
    ) {
        debug_assert_eq!(sparse.len(), values.len());
        debug_assert_eq!(self.count(), values.len());
        self.fill_masks_pkeys(positions, sparse);
        // SAFETY: exclusively owned during build; the compact values section
        // holds `count` u32 slots per the compact geometry.
        unsafe {
            let dst = self.cvalues_ptr() as *mut u32;
            for (i, &v) in values.iter().enumerate() {
                debug_assert!(v <= u32::MAX as u64, "compact value word overflows 32 bits");
                *dst.add(i) = v as u32;
            }
        }
    }

    /// Shared build-time writer for the mask and partial-key sections (the
    /// parts that are byte-identical between the heap and compact layouts).
    fn fill_masks_pkeys(self, positions: &[u16], sparse: &[u32]) {
        match self.tag.mask_kind() {
            MaskKind::Single => {
                let offset = (positions[0] / 8) as u8;
                let mut mask = 0u64;
                for &p in positions {
                    let rel = p as usize - offset as usize * 8;
                    debug_assert!(rel < 64);
                    mask |= 1u64 << (63 - rel);
                }
                self.set_single(offset, mask);
            }
            MaskKind::Multi(slots) => {
                let mut offsets = [0u8; 32];
                let mut mask_bytes = [0u8; 32];
                let mut used = 0usize;
                let mut last_byte = u16::MAX;
                for &p in positions {
                    let byte = p / 8;
                    if byte != last_byte {
                        offsets[used] = byte as u8;
                        used += 1;
                        last_byte = byte;
                    }
                    mask_bytes[used - 1] |= 1 << (7 - (p % 8));
                }
                debug_assert!(used <= slots);
                self.set_multi(&offsets[..slots], &mask_bytes[..slots]);
            }
        }
        // Bulk-write partial keys: one width dispatch, tight copy loops
        // (this is the hot part of every copy-on-write insert).
        let n = sparse.len();
        let base = self.pkeys_base();
        // SAFETY: exclusively owned during build; section sizes follow from
        // the node's geometry (identical for both layouts).
        unsafe {
            match self.tag.key_width() {
                1 => {
                    for (i, &k) in sparse.iter().enumerate() {
                        debug_assert!(k <= u8::MAX as u32);
                        *base.add(i) = k as u8;
                    }
                }
                2 => {
                    let dst = base as *mut u16;
                    for (i, &k) in sparse.iter().enumerate() {
                        debug_assert!(k <= u16::MAX as u32);
                        *dst.add(i) = k as u16;
                    }
                }
                _ => {
                    std::ptr::copy_nonoverlapping(sparse.as_ptr(), base as *mut u32, n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_and_properties() {
        for tag in NodeTag::ALL {
            assert_eq!(NodeTag::from_u8(tag as u8), tag);
            assert!(matches!(tag.key_width(), 1 | 2 | 4));
        }
        assert_eq!(NodeTag::Single8.key_width(), 1);
        assert_eq!(NodeTag::Multi32x32.key_width(), 4);
        assert_eq!(NodeTag::Multi16x16.mask_kind(), MaskKind::Multi(16));
    }

    #[test]
    fn choose_prefers_smallest_layout() {
        // 3 bits in one byte -> single mask, 8-bit keys.
        assert_eq!(NodeTag::choose(&[0, 3, 7]), NodeTag::Single8);
        // 3 bits spanning bytes 0..7 (56 bits apart) -> still single window.
        assert_eq!(NodeTag::choose(&[0, 30, 62]), NodeTag::Single8);
        // Window of 9 bytes -> multi-mask with 2 distinct bytes.
        assert_eq!(NodeTag::choose(&[0, 64]), NodeTag::Multi8x8);
        // 12 bits within one window -> single-mask 16-bit keys.
        let twelve: Vec<u16> = (0..12).collect();
        assert_eq!(NodeTag::choose(&twelve), NodeTag::Single16);
        // 20 bits within one window -> single-mask 32-bit keys.
        let twenty: Vec<u16> = (0..20).collect();
        assert_eq!(NodeTag::choose(&twenty), NodeTag::Single32);
        // 12 distinct far-apart bytes -> multi-16 with 16-bit keys.
        let spread12: Vec<u16> = (0..12).map(|i| i * 80).collect();
        assert_eq!(NodeTag::choose(&spread12), NodeTag::Multi16x16);
        // 12 distinct bytes but 17+ bits -> multi-16 with 32-bit keys.
        let mut dense17: Vec<u16> = (0..12).map(|i| i * 80).collect();
        dense17.extend((1..6).map(|i| i + 960));
        dense17.sort_unstable();
        assert_eq!(NodeTag::choose(&dense17), NodeTag::Multi16x32);
        // 20 distinct bytes -> multi-32.
        let spread20: Vec<u16> = (0..20).map(|i| i * 100).collect();
        assert_eq!(NodeTag::choose(&spread20), NodeTag::Multi32x32);
    }

    #[test]
    fn geometry_is_sane_for_all_tags_and_counts() {
        for tag in NodeTag::ALL {
            for count in 2..=MAX_FANOUT {
                let geo = geometry(tag, count);
                assert!(geo.pkeys_offset >= HEADER_BYTES);
                assert!(geo.values_offset >= geo.pkeys_offset + count * tag.key_width());
                assert_eq!(geo.values_offset % 8, 0);
                assert!(geo.alloc_size >= geo.values_offset + count * 8);
                assert!(geo.alloc_size >= geo.pkeys_offset + tag.simd_padding());
                assert_eq!(geo.alloc_size % NODE_ALIGN, 0);
            }
        }
    }

    #[test]
    fn node_sizes_are_compact() {
        // A 32-entry Single8 node: 8 header + 16 mask + 32 pkeys + 256
        // values = 312 -> 320 aligned. That is 10 bytes/key, in line with
        // the paper's 11.4–14.4 bytes/key overall.
        let geo = geometry(NodeTag::Single8, 32);
        assert_eq!(geo.alloc_size, 320);
    }

    #[test]
    fn leaf_refs_roundtrip() {
        for tid in [0u64, 1, hot_keys::MAX_TID] {
            let r = NodeRef::leaf(tid);
            assert!(r.is_leaf());
            assert!(!r.is_node());
            assert!(!r.is_null());
            assert_eq!(r.tid(), tid);
        }
        assert!(NodeRef::NULL.is_null());
        assert!(!NodeRef::NULL.is_node());
        assert!(!NodeRef::NULL.is_leaf());
    }

    #[test]
    fn alloc_fill_decode_roundtrip_single() {
        let mem = MemCounter::default();
        let positions = [3u16, 4, 6, 8, 9];
        let sparse = [0b00000u32, 0b00010, 0b01000, 0b01001, 0b10000];
        let values: Vec<u64> = (0..5).map(|i| NodeRef::leaf(i).0).collect();
        let node = RawNode::alloc(NodeTag::choose(&positions), 5, 1, &mem);
        node.fill(&positions, &sparse, &values);

        assert_eq!(node.count(), 5);
        assert_eq!(node.height(), 1);
        assert_eq!(node.positions(), positions);
        assert_eq!(node.min_position(), 3);
        for (i, &s) in sparse.iter().enumerate() {
            assert_eq!(node.sparse_key(i), s);
            assert_eq!(node.value(i).0, values[i]);
        }
        assert!(mem.bytes() > 0);
        assert_eq!(mem.nodes(), 1);
        // SAFETY: test-local node, no other reference exists.
        unsafe { node.free(&mem) };
        assert_eq!(mem.bytes(), 0);
        assert_eq!(mem.nodes(), 0);
    }

    #[test]
    fn alloc_fill_decode_roundtrip_multi() {
        let mem = MemCounter::default();
        // Positions spread over 10 distinct bytes -> Multi16x16.
        let positions: Vec<u16> = (0..10).map(|i| i * 81).collect();
        let tag = NodeTag::choose(&positions);
        assert_eq!(tag, NodeTag::Multi16x16);
        let n = 11;
        let sparse: Vec<u32> = (0..n as u32).collect();
        let values: Vec<u64> = (0..n as u64).map(|i| NodeRef::leaf(i).0).collect();
        let node = RawNode::alloc(tag, n, 2, &mem);
        node.fill(&positions, &sparse, &values);
        assert_eq!(node.positions(), positions);
        assert_eq!(node.min_position(), 0);
        for (i, &sk) in sparse.iter().enumerate() {
            assert_eq!(node.sparse_key(i), sk);
        }
        // SAFETY: test-local node, no other reference exists.
        unsafe { node.free(&mem) };
    }

    #[test]
    fn extract_dense_single_mask() {
        let mem = MemCounter::default();
        // Positions 3,4,6,8,9 as in Figure 5 of the paper.
        let positions = [3u16, 4, 6, 8, 9];
        let node = RawNode::alloc(NodeTag::choose(&positions), 2, 1, &mem);
        node.fill(&positions, &[0, 1], &[NodeRef::leaf(0).0, NodeRef::leaf(1).0]);

        // Key bits (MSB-first): 0110101101 -> positions {3:0,4:1,6:1,8:0,9:1}
        // Dense partial key (positions ascending -> bits MSB..LSB): 01101.
        let mut key = hot_keys::PaddedKey::new();
        key.set(&[0b0110_1011, 0b0100_0000]);
        assert_eq!(node.extract_dense(key.padded()), 0b01101);
        // SAFETY: test-local node, no other reference exists.
        unsafe { node.free(&mem) };
    }

    #[test]
    fn extract_dense_multi_mask_matches_bitwise_reference(){
        let mem = MemCounter::default();
        // Positions spread across distant bytes, mixed bits per byte.
        let positions: Vec<u16> = vec![1, 6, 130, 133, 260, 400, 401, 402, 950, 1001];
        let tag = NodeTag::choose(&positions);
        assert!(matches!(tag.mask_kind(), MaskKind::Multi(_)));
        let node = RawNode::alloc(tag, 2, 1, &mem);
        node.fill(&positions, &[0, 1], &[NodeRef::leaf(0).0, NodeRef::leaf(1).0]);

        let mut raw = [0u8; 200];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(151).wrapping_add(17);
        }
        let mut key = hot_keys::PaddedKey::new();
        key.set(&raw);

        // Bit-by-bit reference extraction: positions ascending, MSB first.
        let mut expected = 0u32;
        for &p in &positions {
            expected = (expected << 1) | hot_bits::bit_at(key.bytes(), p as usize) as u32;
        }
        assert_eq!(node.extract_dense(key.padded()), expected);
        // SAFETY: test-local node, no other reference exists.
        unsafe { node.free(&mem) };
    }

    #[test]
    fn rank_and_total_matches_positions_reference() {
        // rank_and_total computes the "how many positions < pos" rank
        // straight off the mask encoding; cross-check against the decoded
        // position list for layouts of every mask kind.
        let mem = MemCounter::default();
        let position_sets: Vec<Vec<u16>> = vec![
            vec![0],                                  // single, one bit
            vec![3, 4, 6, 8, 9],                      // single, Figure 5
            (0..31).collect(),                        // single, full window
            vec![56, 57, 120, 121],                   // single (span 8..15=8 bytes? no: bytes 7 & 15 -> multi)
            vec![0, 100],                             // multi-8
            vec![7, 64, 129, 200, 300, 411, 512, 637],// multi-8, 8 bytes
            (0..10).map(|i| i * 81).collect(),        // multi-16
            (0..20).map(|i| i * 100).collect(),       // multi-32
        ];
        for positions in position_sets {
            let n = positions.len() + 1;
            // A rightmost-chain trie is a valid linearization for any
            // position set: entry i branches right at the i-th position.
            let m = positions.len();
            let sparse: Vec<u32> = (0..=m as u32)
                .map(|i| {
                    // entry i: bits at the i highest extracted positions set
                    if i == 0 {
                        0
                    } else {
                        let ones = ((1u64 << i) - 1) as u32;
                        ones << (m as u32 - i)
                    }
                })
                .collect();
            let values: Vec<u64> = (0..=m as u64).map(|i| NodeRef::leaf(i).0).collect();
            let tag = NodeTag::choose(&positions);
            let node = RawNode::alloc(tag, n, 1, &mem);
            node.fill(&positions, &sparse, &values);

            let max_pos = *positions.last().unwrap() as usize;
            for probe in 0..=(max_pos + 10) {
                let (rank, total) = node.rank_and_total(probe);
                let expect_rank = positions.iter().filter(|&&p| (p as usize) < probe).count();
                assert_eq!(
                    (rank, total),
                    (expect_rank, positions.len()),
                    "positions {positions:?} probe {probe} tag {tag:?}"
                );
            }
            // SAFETY: test-local node, no other reference exists.
            unsafe { node.free(&mem) };
        }
        assert_eq!(mem.bytes(), 0);
    }

    #[test]
    fn read_entries_round_trips_all_widths() {
        let mem = MemCounter::default();
        for (positions, n) in [
            ((0u16..5).collect::<Vec<_>>(), 6usize), // u8 pkeys
            ((0u16..12).collect::<Vec<_>>(), 13),    // u16 pkeys
            ((0u16..20).collect::<Vec<_>>(), 21),    // u32 pkeys
        ] {
            let m = positions.len();
            // Rightmost-chain sparse keys (valid linearization).
            let sparse: Vec<u32> = (0..n as u32)
                .map(|i| if i == 0 { 0 } else { (((1u64 << i) - 1) as u32) << (m as u32 - i) })
                .collect();
            let values: Vec<u64> = (0..n as u64).map(|i| NodeRef::leaf(i * 7).0).collect();
            let node = RawNode::alloc(NodeTag::choose(&positions), n, 1, &mem);
            node.fill(&positions, &sparse, &values);
            let (mut s, mut v) = (Vec::new(), Vec::new());
            node.read_entries(&mut s, &mut v);
            assert_eq!(s, sparse);
            assert_eq!(v, values);
            // SAFETY: test-local node, no other reference exists.
            unsafe { node.free(&mem) };
        }
    }

    #[test]
    fn recycled_allocations_start_clean() {
        // The free-list allocator hands back used blocks; headers must be
        // cleared and contents fully overwritten by fill.
        let mem = MemCounter::default();
        for round in 0..10 {
            let positions = [3u16, 9, 14];
            let sparse = [0b000u32, 0b001, 0b010, 0b100];
            let values: Vec<u64> = (0..4).map(|i| NodeRef::leaf(i + round).0).collect();
            let node = RawNode::alloc(NodeTag::choose(&positions), 4, 2, &mem);
            node.fill(&positions, &sparse, &values);
            assert_eq!(node.count(), 4);
            assert_eq!(node.height(), 2);
            assert_eq!(node.positions(), positions);
            for i in 0..4 {
                assert_eq!(node.sparse_key(i), sparse[i]);
                assert_eq!(node.value(i).0, values[i]);
            }
            assert_eq!(node.lock_word().load(Ordering::Relaxed), 0, "lock starts clear");
            // SAFETY: test-local node, no other reference exists.
            unsafe { node.free(&mem) };
        }
        assert_eq!(mem.bytes(), 0);
    }

    #[test]
    fn search_on_filled_node() {
        let mem = MemCounter::default();
        let positions = [0u16, 1];
        // Entries: sparse 00, 01, 10 (keys 00,01,1x in trie order).
        let node = RawNode::alloc(NodeTag::choose(&positions), 3, 1, &mem);
        node.fill(
            &positions,
            &[0b00, 0b01, 0b10],
            &[NodeRef::leaf(0).0, NodeRef::leaf(1).0, NodeRef::leaf(2).0],
        );
        assert_eq!(node.search(0b00), 0);
        assert_eq!(node.search(0b01), 1);
        assert_eq!(node.search(0b10), 2);
        assert_eq!(node.search(0b11), 2); // sparse keys: 10 ⊆ 11 wins
        // SAFETY: test-local node, no other reference exists.
        unsafe { node.free(&mem) };
    }
}
