//! Transient decoded node representation and the intra-node algorithms of
//! Section 4.4.
//!
//! epoch-exempt: builders decode nodes the caller already protects (epoch
//! pin + node lock on the concurrent path, `&mut` on the single-threaded
//! path) and build private not-yet-published replacements.
//!
//! Nodes are copy-on-write: every structural modification decodes the node
//! into a [`Builder`] (sorted discriminative positions + widened sparse
//! partial keys + value words), mutates it, and encodes a fresh node choosing
//! the smallest of the 9 physical layouts. The extracted-space convention is
//! the one fixed in `hot_bits`: with `m` positions `p_0 < … < p_{m-1}`,
//! position `p_r` occupies partial-key bit `m - 1 - r`.
//!
//! The correctness core (see also DESIGN.md §3.3): for an insert with
//! mismatch bit `b` and matched (false-positive) entry `t`, the *affected
//! subtree* — the leaves below the BiNode the new discriminative bit splits —
//! is exactly the contiguous run of entries `e` with
//! `e.sparse & M == t.sparse & M`, where `M` masks the positions `< b`:
//!
//! * positions along any path strictly increase, so every BiNode inside the
//!   affected subtree has a position `> b`; affected entries' sparse bits at
//!   positions `< b` are therefore either shared path bits (equal to `t`'s)
//!   or off-path zeros (also equal to `t`'s, which shares the path);
//! * an unaffected entry diverges from `t` at some BiNode with position
//!   `q < b` that lies on both paths, where their bits — and hence their
//!   sparse bits, `q` being on-path for both — differ.

use super::{MemCounter, NodeRef, NodeTag, RawNode, MAX_FANOUT, MAX_POSITIONS};

/// Compound height of the subtree hanging off a value word: 0 for leaves,
/// the stored node height otherwise.
#[inline]
pub(crate) fn ref_height(word: u64) -> u8 {
    let r = NodeRef(word);
    if r.is_node() {
        r.as_raw().height()
    } else {
        0
    }
}

/// Height of a node with the given children: 1 + the tallest child.
#[inline]
pub(crate) fn true_height(values: &[u64]) -> u8 {
    1 + values.iter().map(|&v| ref_height(v)).max().unwrap_or(0)
}

/// A decoded compound node: the linearization of a k-constrained binary
/// Patricia trie, in mutable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Builder {
    /// Sorted, distinct discriminative key-bit positions (`m` entries).
    pub positions: Vec<u16>,
    /// Sparse partial keys in extracted space, in trie (key) order.
    /// May temporarily hold `MAX_FANOUT + 1` entries during overflow.
    pub sparse: Vec<u32>,
    /// Value words parallel to `sparse`.
    pub values: Vec<u64>,
    /// Compound-subtree height (1 = all entries are leaves).
    pub height: u8,
}

impl Builder {
    /// Decode a physical node.
    pub(crate) fn decode(node: RawNode) -> Builder {
        let mut b = Builder::empty();
        b.decode_into(node);
        b
    }

    /// An empty builder shell for reuse via [`Self::decode_into`].
    pub(crate) fn empty() -> Builder {
        Builder {
            positions: Vec::with_capacity(MAX_POSITIONS + 1),
            sparse: Vec::with_capacity(MAX_FANOUT + 1),
            values: Vec::with_capacity(MAX_FANOUT + 1),
            height: 0,
        }
    }

    /// Decode a physical node into this builder, reusing its buffers (the
    /// hot insert path decodes one node per operation; reusing the
    /// allocations keeps it malloc-free).
    pub(crate) fn decode_into(&mut self, node: RawNode) {
        node.positions_into(&mut self.positions);
        node.read_entries(&mut self.sparse, &mut self.values);
        self.height = node.height();
    }

    /// Encode into a freshly allocated physical node with the smallest
    /// applicable layout.
    ///
    /// # Panics
    /// Panics if the builder is not a valid node (entry count outside
    /// `2..=32`, or more than 31 positions).
    pub fn encode(&self, mem: &MemCounter) -> NodeRef {
        let n = self.values.len();
        assert!((2..=MAX_FANOUT).contains(&n), "entry count {n}");
        assert!(
            !self.positions.is_empty() && self.positions.len() <= MAX_POSITIONS,
            "position count {}",
            self.positions.len()
        );
        let tag = NodeTag::choose(&self.positions);
        let node = RawNode::alloc(tag, n, self.height, mem);
        node.fill(&self.positions, &self.sparse, &self.values);
        NodeRef::node(node.base, tag)
    }

    /// Build the two-entry node used for leaf-node pushdown, new roots and
    /// intermediate nodes: a single BiNode at `pos` with `zero` on the 0 side
    /// and `one` on the 1 side.
    pub fn pair(pos: u16, zero: u64, one: u64, height: u8) -> Builder {
        Builder {
            positions: vec![pos],
            sparse: vec![0, 1],
            values: vec![zero, one],
            height,
        }
    }

    /// Assemble a node from a bottom-up construction fragment (the bulk
    /// loader's primitive, DESIGN.md §11).
    ///
    /// `bounds[i]` is the discriminative bit position separating entry `i`
    /// from entry `i + 1` — the first mismatching bit between the last key
    /// under entry `i` and the first key under entry `i + 1`. The node's
    /// embedded Patricia topology is implied: it is the min-Cartesian tree
    /// over `bounds` (the BiNode with the smallest position is the root,
    /// and over a contiguous key range that minimum is unique, so the tree
    /// is well defined). Sparse partial keys follow by setting, at every
    /// BiNode, the extracted bit of all entries on its 1-side.
    ///
    /// `values` are the entries' value words in key order; the height is
    /// derived from them (`1 +` the tallest child).
    pub fn from_fragment(bounds: &[u16], values: &[u64]) -> Builder {
        Self::from_fragment_with(bounds, values, ref_height)
    }

    /// [`Self::from_fragment`] with an explicit child-height resolver —
    /// the arena backend's value words are 32-bit `CRef`s that must not be
    /// interpreted as heap pointers, so it supplies a resolver that reads
    /// heights out of the arena instead.
    pub fn from_fragment_with(
        bounds: &[u16],
        values: &[u64],
        height_of: impl Fn(u64) -> u8 + Copy,
    ) -> Builder {
        let n = values.len();
        assert!((2..=MAX_FANOUT).contains(&n), "entry count {n}");
        assert_eq!(bounds.len(), n - 1, "one boundary between adjacent entries");
        let mut positions: Vec<u16> = bounds.to_vec();
        positions.sort_unstable();
        positions.dedup();
        let m = positions.len();
        debug_assert!(m <= MAX_POSITIONS, "n <= 32 entries imply <= 31 positions");
        let mut sparse = vec![0u32; n];
        // Worklist recursion over entry subranges: the smallest boundary in
        // a range is its subtree's root BiNode; everything right of it gets
        // that position's extracted bit set (path bits accumulate, off-path
        // bits stay 0).
        let mut ranges = vec![(0usize, n - 1)];
        while let Some((lo, hi)) = ranges.pop() {
            if lo == hi {
                continue;
            }
            let mut root = lo;
            for j in lo + 1..hi {
                if bounds[j] < bounds[root] {
                    root = j;
                }
            }
            let rank = positions.partition_point(|&p| p < bounds[root]);
            let bit = 1u32 << (m - 1 - rank);
            for s in &mut sparse[root + 1..=hi] {
                *s |= bit;
            }
            ranges.push((lo, root));
            ranges.push((root + 1, hi));
        }
        Builder {
            positions,
            sparse,
            values: values.to_vec(),
            height: 1 + values.iter().map(|&v| height_of(v)).max().unwrap_or(0),
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Builders are never empty (valid nodes hold at least 2 entries).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the builder holds more than `k` entries and must be split.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.values.len() > MAX_FANOUT
    }

    #[inline]
    fn m(&self) -> usize {
        self.positions.len()
    }

    /// Extracted-space bit index of the position with rank `r`.
    #[inline]
    fn bit_of_rank(&self, r: usize) -> u32 {
        (self.m() - 1 - r) as u32
    }

    /// Ensure `pos` is a discriminative position, recoding all sparse keys
    /// with a PDEP when it is new (Section 4.4: "all sparse partial keys are
    /// recoded using a single PDEP instruction"). Returns the extracted-space
    /// bit index of `pos`.
    pub fn ensure_position(&mut self, pos: u16) -> u32 {
        match self.positions.binary_search(&pos) {
            Ok(r) => self.bit_of_rank(r),
            Err(r) => {
                self.positions.insert(r, pos);
                let m_new = self.m();
                let new_bit = (m_new - 1 - r) as u32;
                // Scatter the old m-1 used bits around the inserted 0 bit:
                // the deposit mask is all m_new low bits except `new_bit`.
                let all = if m_new == 64 {
                    u64::MAX
                } else {
                    (1u64 << m_new) - 1
                };
                let deposit = all & !(1u64 << new_bit);
                for s in self.sparse.iter_mut() {
                    *s = hot_bits::pdep64(*s as u64, deposit) as u32;
                }
                new_bit
            }
        }
    }

    /// Mask (extracted space) of all positions strictly smaller than the
    /// position at extracted bit `bit` — i.e. the path prefix above it.
    #[inline]
    fn prefix_mask_above(&self, bit: u32) -> u32 {
        let m = self.m() as u32;
        debug_assert!(bit < m);
        // Positions smaller than the one at `bit` occupy bits (bit, m-1].
        let above = m - 1 - bit; // how many positions are smaller
        if above == 0 {
            0
        } else {
            (((1u64 << above) - 1) << (bit + 1)) as u32
        }
    }

    /// The contiguous run of entries in the subtree below the BiNode at
    /// `bit`, on the path of entry `through` (see module docs).
    pub fn affected_range(&self, bit: u32, through: usize) -> (usize, usize) {
        let mask = self.prefix_mask_above(bit);
        let prefix = self.sparse[through] & mask;
        let mut lo = through;
        while lo > 0 && self.sparse[lo - 1] & mask == prefix {
            lo -= 1;
        }
        let mut hi = through;
        while hi + 1 < self.sparse.len() && self.sparse[hi + 1] & mask == prefix {
            hi += 1;
        }
        debug_assert!((lo..=hi)
            .all(|i| self.sparse[i] & mask == prefix));
        (lo, hi)
    }

    /// Insert a new entry: `pos` is the mismatch bit position, `matched` the
    /// index of the false-positive candidate entry found by the preceding
    /// search, `key_bit` the new key's bit at `pos`, and `value` the new
    /// entry's value word. Implements the sparse-partial-key insertion of
    /// Section 4.4. Returns the index the entry was inserted at.
    pub fn insert_entry(&mut self, pos: u16, matched: usize, key_bit: u8, value: u64) -> usize {
        debug_assert!(self.len() <= MAX_FANOUT, "insert into overflowed builder");
        let bit = self.ensure_position(pos);
        let (lo, hi) = self.affected_range(bit, matched);
        // Every affected entry sits below the new BiNode, whose position is
        // smaller than everything on their remaining paths, so their bit at
        // `pos` is still undefined (0).
        debug_assert!((lo..=hi).all(|i| self.sparse[i] & (1 << bit) == 0));
        let prefix = self.sparse[matched] & self.prefix_mask_above(bit);
        let new_sparse = prefix | ((key_bit as u32) << bit);
        let at = if key_bit == 1 {
            // Affected subtree keeps bit 0; new entry goes after it.
            hi + 1
        } else {
            // Affected subtree moves to the 1 side of the new BiNode; the
            // new entry precedes it.
            for i in lo..=hi {
                self.sparse[i] |= 1 << bit;
            }
            lo
        };
        self.sparse.insert(at, new_sparse);
        self.values.insert(at, value);
        at
    }

    /// Replace the entry at `idx` (a collapsed child link) by a BiNode at
    /// `pos` with children `zero` and `one` — the *parent pull up* primitive
    /// (the moved BiNode is the split child's root BiNode).
    pub fn replace_entry_with_pair(&mut self, idx: usize, pos: u16, zero: u64, one: u64) {
        self.replace_entry_with_pair_with(idx, pos, zero, one, ref_height);
    }

    /// [`Self::replace_entry_with_pair`] with an explicit child-height
    /// resolver (arena backend; see [`Self::from_fragment_with`]).
    pub fn replace_entry_with_pair_with(
        &mut self,
        idx: usize,
        pos: u16,
        zero: u64,
        one: u64,
        height_of: impl Fn(u64) -> u8 + Copy,
    ) {
        let bit = self.ensure_position(pos);
        debug_assert_eq!(
            self.sparse[idx] & (1 << bit),
            0,
            "pulled-up position lies below the entry's path"
        );
        self.values[idx] = zero;
        self.sparse.insert(idx + 1, self.sparse[idx] | (1 << bit));
        self.values.insert(idx + 1, one);
        // The replaced subtree may have been the unique tallest child.
        self.height = 1 + self.values.iter().map(|&v| height_of(v)).max().unwrap_or(0);
    }

    /// Rank (and extracted bit) of this node's root BiNode: the smallest
    /// position at which both bit values occur.
    fn root_rank(&self) -> usize {
        debug_assert!(self.len() >= 2);
        // The minimum position is always the root BiNode (positions increase
        // along paths and the root lies on all of them), so rank 0 — but
        // assert the mixed-bits property in debug builds.
        debug_assert!({
            let bit = self.bit_of_rank(0);
            let ones = self.sparse.iter().filter(|&&s| s & (1 << bit) != 0).count();
            ones > 0 && ones < self.sparse.len()
        });
        0
    }

    /// Extract the sub-builder for the entry range `lo..hi` (exclusive),
    /// keeping exactly the positions that discriminate *within* the range
    /// (both bit values occur) and compacting sparse keys with a PEXT.
    fn sub_builder(&self, lo: usize, hi: usize, height_of: impl Fn(u64) -> u8 + Copy) -> Builder {
        debug_assert!(hi - lo >= 2);
        let m = self.m();
        let mut keep_mask = 0u64;
        let mut kept_positions = Vec::new();
        for r in 0..m {
            let bit = self.bit_of_rank(r);
            let mut any0 = false;
            let mut any1 = false;
            for &s in &self.sparse[lo..hi] {
                if s & (1 << bit) != 0 {
                    any1 = true;
                } else {
                    any0 = true;
                }
            }
            if any0 && any1 {
                keep_mask |= 1u64 << bit;
                kept_positions.push(self.positions[r]);
            }
        }
        let sparse: Vec<u32> = self.sparse[lo..hi]
            .iter()
            .map(|&s| hot_bits::pext64(s as u64, keep_mask) as u32)
            .collect();
        let values = self.values[lo..hi].to_vec();
        // A half keeps only a subset of the children, so its height must be
        // recomputed — inheriting the split node's height would let stored
        // heights ratchet upward and defeat the height optimization.
        let height = 1 + values.iter().map(|&v| height_of(v)).max().unwrap_or(0);
        Builder {
            positions: kept_positions,
            sparse,
            values,
            height,
        }
    }

    /// Split an overflowed builder at its root BiNode (Listing 1's
    /// `split(n)`): returns the root position and the left/right halves.
    pub fn split(&self) -> (u16, Builder, Builder) {
        self.split_with(ref_height)
    }

    /// [`Self::split`] with an explicit child-height resolver (arena
    /// backend; see [`Self::from_fragment_with`]).
    pub fn split_with(&self, height_of: impl Fn(u64) -> u8 + Copy) -> (u16, Builder, Builder) {
        let r = self.root_rank();
        let bit = self.bit_of_rank(r);
        let s = self
            .sparse
            .iter()
            .position(|&k| k & (1 << bit) != 0)
            .expect("root BiNode has a non-empty 1 side");
        debug_assert!(s >= 1 && s < self.len());
        let pos = self.positions[r];
        // Halves of size 1 collapse to the entry's value directly; the
        // caller handles that via `half_ref`.
        (
            pos,
            self.sub_range(0, s, height_of),
            self.sub_range(s, self.len(), height_of),
        )
    }

    /// Like [`Self::sub_builder`] but tolerates single-entry ranges, which
    /// the caller collapses to the bare value word.
    fn sub_range(&self, lo: usize, hi: usize, height_of: impl Fn(u64) -> u8 + Copy) -> Builder {
        if hi - lo == 1 {
            Builder {
                positions: Vec::new(),
                sparse: vec![0],
                values: vec![self.values[lo]],
                height: self.height,
            }
        } else {
            self.sub_builder(lo, hi, height_of)
        }
    }

    /// Remove the entry at `idx`, collapsing its parent BiNode and dropping
    /// the BiNode's position when it becomes unused (the deletion
    /// counterpart of the sparse-partial-key insertion).
    ///
    /// Requires at least 3 entries (2-entry nodes collapse at tree level).
    pub fn remove_entry(&mut self, idx: usize) {
        debug_assert!(self.len() >= 3);
        // Locate the parent BiNode of `idx` by walking the linearized
        // topology from the root: at each step find the subtree root
        // (smallest mixed position within the range) and descend toward
        // `idx` until it is alone on its side.
        let (mut lo, mut hi) = (0usize, self.len() - 1);
        let (parent_rank, sib_range) = loop {
            let rank = self.range_root_rank(lo, hi);
            let bit = self.bit_of_rank(rank);
            let split = (lo..=hi)
                .find(|&i| self.sparse[i] & (1 << bit) != 0)
                .expect("mixed position has a 1 side");
            let (side, other) = if idx < split {
                ((lo, split - 1), (split, hi))
            } else {
                ((split, hi), (lo, split - 1))
            };
            if side == (idx, idx) {
                break (rank, other);
            }
            (lo, hi) = side;
        };
        let parent_bit = self.bit_of_rank(parent_rank);

        // The sibling subtree loses the collapsed parent BiNode from its
        // paths: clear its bit (a no-op when the sibling was the 0 side).
        for i in sib_range.0..=sib_range.1 {
            self.sparse[i] &= !(1 << parent_bit);
        }
        self.sparse.remove(idx);
        self.values.remove(idx);

        // Drop the position entirely if no other BiNode uses it.
        if self.sparse.iter().all(|&s| s & (1 << parent_bit) == 0) {
            self.positions.remove(parent_rank);
            let m_after = self.m() as u64;
            let keep = !(1u64 << parent_bit) & ((1u64 << (m_after + 1)) - 1);
            for s in self.sparse.iter_mut() {
                *s = hot_bits::pext64(*s as u64, keep) as u32;
            }
        }
    }

    /// Root rank of the subtree spanning entries `lo..=hi`: the smallest
    /// rank whose bit is mixed within the range.
    fn range_root_rank(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        for r in 0..self.m() {
            let bit = self.bit_of_rank(r);
            let first = self.sparse[lo] & (1 << bit);
            if self.sparse[lo..=hi].iter().any(|&s| s & (1 << bit) != first) {
                return r;
            }
        }
        unreachable!("distinct entries must differ at some position")
    }

    /// Structural invariant check used by tests and the tree validator.
    ///
    /// Panicking wrapper over [`Self::try_check_invariants`].
    pub fn check_invariants(&self) {
        if let Err(msg) = self.try_check_invariants() {
            panic!("{msg}");
        }
    }

    /// Structural invariant check, reporting the first violation instead of
    /// panicking (the whole-tree walk in [`crate::invariants`] aggregates
    /// these into its error message).
    ///
    /// Verifies: entries within bounds, positions sorted and distinct, entry
    /// 0's sparse key is 0, entries are distinct, the linearization decodes
    /// to a well-formed Patricia topology (every recursion step finds a
    /// mixed position and splits into contiguous sides — this is the
    /// paper's sparse-partial-key *discriminativity*), and every sparse key
    /// bit is justified by the entry's path.
    pub fn try_check_invariants(&self) -> Result<(), String> {
        let n = self.len();
        let m = self.m();
        if n < 2 {
            return Err(format!("node holds {n} entries; at least 2 required"));
        }
        if n > MAX_FANOUT + 1 {
            return Err(format!("node holds {n} entries; at most k+1 allowed"));
        }
        if m == 0 || m >= n {
            return Err(format!("position count violates 1 <= m <= n-1 (m={m}, n={n})"));
        }
        if !self.positions.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!(
                "positions not sorted/distinct: {:?}",
                self.positions
            ));
        }
        if self.sparse[0] != 0 {
            return Err(format!(
                "leftmost entry's sparse key is {:#b}, expected 0",
                self.sparse[0]
            ));
        }
        if self.sparse.len() != self.values.len() {
            return Err(format!(
                "sparse/values length mismatch: {} vs {}",
                self.sparse.len(),
                self.values.len()
            ));
        }
        let max_sparse = self.sparse.iter().map(|s| *s as u64).max().unwrap_or(0);
        if max_sparse >= (1u64 << m) {
            return Err(format!("sparse key {max_sparse:#b} does not fit in m={m} bits"));
        }
        self.check_topology(0, n - 1, &mut vec![false; m])
    }

    fn check_topology(&self, lo: usize, hi: usize, on_path: &mut Vec<bool>) -> Result<(), String> {
        if lo == hi {
            // A leaf entry: every set sparse bit must be an on-path 1 bit.
            for (r, &on) in on_path.iter().enumerate().take(self.m()) {
                let bit = self.bit_of_rank(r);
                if self.sparse[lo] & (1 << bit) != 0 && !on {
                    return Err(format!(
                        "entry {lo} has bit set at rank {r} off its path"
                    ));
                }
            }
            return Ok(());
        }
        let Some(rank) = (0..self.m()).find(|&r| {
            let bit = self.bit_of_rank(r);
            let first = self.sparse[lo] & (1 << bit);
            self.sparse[lo..=hi].iter().any(|&s| s & (1 << bit) != first)
        }) else {
            return Err(format!(
                "entries {lo}..={hi} are indistinguishable (duplicate sparse keys)"
            ));
        };
        let bit = self.bit_of_rank(rank);
        let split = (lo..=hi)
            .find(|&i| self.sparse[i] & (1 << bit) != 0)
            .expect("rank was chosen mixed over lo..=hi");
        if split == lo {
            return Err(format!(
                "BiNode at rank {rank} over {lo}..={hi} has an empty 0 side"
            ));
        }
        // The 0 side precedes the 1 side and each is contiguous.
        for i in lo..split {
            if self.sparse[i] & (1 << bit) != 0 {
                return Err(format!("entry {i}: 0 side of rank {rank} not contiguous"));
            }
        }
        for i in split..=hi {
            if self.sparse[i] & (1 << bit) == 0 {
                return Err(format!("entry {i}: 1 side of rank {rank} not contiguous"));
            }
        }
        self.check_topology(lo, split - 1, on_path)?;
        on_path[rank] = true;
        let res = self.check_topology(split, hi, on_path);
        on_path[rank] = false;
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: build the expected (sparse) linearization from full keys
    /// by simulating a binary Patricia trie over the given bit width.
    fn reference_builder(keys: &[u32], width: u16) -> Builder {
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        // Discriminative positions = positions where a Patricia trie over
        // these keys branches. Build recursively.
        fn build(
            keys: &[u32],
            width: u16,
            from_bit: u16,
            positions: &mut Vec<u16>,
            paths: &mut Vec<Vec<(u16, u8)>>,
            prefix: &mut Vec<(u16, u8)>,
        ) {
            if keys.len() == 1 {
                paths.push(prefix.clone());
                return;
            }
            // Find the highest bit (smallest position) where keys differ.
            let mut pos = from_bit;
            loop {
                let b = |k: u32| (k >> (width - 1 - pos)) & 1;
                if keys.iter().any(|&k| b(k) != b(keys[0])) {
                    break;
                }
                pos += 1;
            }
            positions.push(pos);
            let split = keys
                .iter()
                .position(|&k| (k >> (width - 1 - pos)) & 1 == 1)
                .unwrap();
            prefix.push((pos, 0));
            build(&keys[..split], width, pos + 1, positions, paths, prefix);
            prefix.pop();
            prefix.push((pos, 1));
            build(&keys[split..], width, pos + 1, positions, paths, prefix);
            prefix.pop();
        }
        let mut positions = Vec::new();
        let mut paths = Vec::new();
        build(keys, width, 0, &mut positions, &mut paths, &mut Vec::new());
        positions.sort_unstable();
        positions.dedup();
        let m = positions.len();
        let sparse: Vec<u32> = paths
            .iter()
            .map(|path| {
                let mut s = 0u32;
                for &(pos, bitval) in path {
                    let r = positions.binary_search(&pos).unwrap();
                    s |= (bitval as u32) << (m - 1 - r);
                }
                s
            })
            .collect();
        Builder {
            positions,
            sparse,
            values: keys.iter().map(|&k| NodeRef::leaf(k as u64).0).collect(),
            height: 1,
        }
    }

    /// Insert keys one at a time through the builder API, mimicking what the
    /// tree layer does (search = subset match, mismatch via full keys).
    fn builder_by_insertion(keys: &[u32], width: u16) -> Builder {
        assert!(keys.len() >= 2);
        let key_bit = |k: u32, p: u16| ((k >> (width - 1 - p)) & 1) as u8;
        let mut sorted_first_two = [keys[0], keys[1]];
        sorted_first_two.sort_unstable();
        // Find mismatch position of the first two keys.
        let mut pos = 0;
        while key_bit(keys[0], pos) == key_bit(keys[1], pos) {
            pos += 1;
        }
        let mut b = Builder::pair(
            pos,
            NodeRef::leaf(sorted_first_two[0] as u64).0,
            NodeRef::leaf(sorted_first_two[1] as u64).0,
            1,
        );
        for &k in &keys[2..] {
            // Search: extract dense key, find highest subset match.
            let dense = {
                let mut d = 0u32;
                let m = b.positions.len();
                for (r, &p) in b.positions.iter().enumerate() {
                    d |= (key_bit(k, p) as u32) << (m - 1 - r);
                }
                d
            };
            let matched = (0..b.len())
                .rev()
                .find(|&i| b.sparse[i] & dense == b.sparse[i])
                .unwrap();
            let existing = NodeRef(b.values[matched]).tid() as u32;
            assert_ne!(existing, k, "duplicate key in test");
            let mut mis = 0;
            while key_bit(existing, mis) == key_bit(k, mis) {
                mis += 1;
            }
            b.insert_entry(mis, matched, key_bit(k, mis), NodeRef::leaf(k as u64).0);
            b.check_invariants();
        }
        b
    }

    /// Seven 10-bit keys whose binary Patricia trie has the discriminative
    /// positions {3, 4, 6, 8, 9} of the paper's Figure 5 example (position 4
    /// discriminates in two subtrees, so 6 BiNodes share 5 positions).
    const FIG5_KEYS: [u32; 7] = [0, 1, 32, 40, 64, 66, 96];

    #[test]
    fn figure5_example() {
        let b = reference_builder(&FIG5_KEYS, 10);
        assert_eq!(b.positions, vec![3, 4, 6, 8, 9]);
        // Sparse partial keys: only on-path discriminative bits are set,
        // all others stay 0. Positions (3,4,6,8,9) -> extracted bits
        // (4,3,2,1,0).
        assert_eq!(
            b.sparse,
            vec![0b00000, 0b00001, 0b01000, 0b01100, 0b10000, 0b10010, 0b11000]
        );
        b.check_invariants();
    }

    #[test]
    fn insertion_matches_reference_construction() {
        // Deterministic structure conjecture at node level: inserting in any
        // order yields the reference linearization.
        let keys = FIG5_KEYS;
        let reference = reference_builder(&keys, 10);
        // Insertion in sorted order.
        let built = builder_by_insertion(&keys, 10);
        assert_eq!(built.positions, reference.positions);
        assert_eq!(built.sparse, reference.sparse);
        assert_eq!(built.values, reference.values);
        // Insertion in a scrambled order.
        let scrambled = [keys[4], keys[0], keys[6], keys[2], keys[5], keys[1], keys[3]];
        let built2 = builder_by_insertion(&scrambled, 10);
        assert_eq!(built2.positions, reference.positions);
        assert_eq!(built2.sparse, reference.sparse);
        assert_eq!(built2.values, reference.values);
    }

    #[test]
    fn ensure_position_recodes_with_pdep() {
        let mut b = Builder {
            positions: vec![3, 9],
            sparse: vec![0b00, 0b01, 0b10],
            values: vec![
                NodeRef::leaf(0).0,
                NodeRef::leaf(1).0,
                NodeRef::leaf(2).0,
            ],
            height: 1,
        };
        // Insert position 7 between ranks: new ranks (3,7,9); extracted bits
        // p3 -> 2, p7 -> 1, p9 -> 0. Old bit for p3 was 1, for p9 was 0.
        let bit = b.ensure_position(7);
        assert_eq!(bit, 1);
        assert_eq!(b.positions, vec![3, 7, 9]);
        assert_eq!(b.sparse, vec![0b000, 0b001, 0b100]);
        // Existing position returns its bit without recoding.
        assert_eq!(b.ensure_position(3), 2);
        assert_eq!(b.sparse, vec![0b000, 0b001, 0b100]);
    }

    #[test]
    fn affected_range_is_the_subtree() {
        // Node over positions {0,1}: entries 00, 01, 10, 11 (a full trie).
        let b = Builder {
            positions: vec![0, 1],
            sparse: vec![0b00, 0b01, 0b10, 0b11],
            values: (0..4).map(|i| NodeRef::leaf(i).0).collect(),
            height: 1,
        };
        // BiNode at bit 0 (position 1) below entry 1: the subtree through
        // entry 1 with prefix bits above bit 0 -> entries sharing bit 1.
        assert_eq!(b.affected_range(0, 1), (0, 1));
        assert_eq!(b.affected_range(0, 2), (2, 3));
        // At the root bit every entry is affected.
        assert_eq!(b.affected_range(1, 2), (0, 3));
    }

    #[test]
    fn insert_entry_zero_and_one_sides() {
        // Start with keys {0b00, 0b11} over 2-bit space, position 0.
        let mut b = Builder::pair(0, NodeRef::leaf(0b00).0, NodeRef::leaf(0b11).0, 1);
        // Insert 0b01: mismatch with 0b00 at position 1, bit 1 -> goes after.
        b.insert_entry(1, 0, 1, NodeRef::leaf(0b01).0);
        b.check_invariants();
        assert_eq!(
            b.values,
            vec![
                NodeRef::leaf(0b00).0,
                NodeRef::leaf(0b01).0,
                NodeRef::leaf(0b11).0
            ]
        );
        // Insert 0b10: candidate search would match 0b11 (dense 10 ⊇ sparse
        // of entry 2? entry 2 sparse is 1<<1|? ). Mismatch at position 1,
        // bit 0 -> goes before the affected subtree {0b11}.
        let matched = 2;
        b.insert_entry(1, matched, 0, NodeRef::leaf(0b10).0);
        b.check_invariants();
        assert_eq!(
            b.values,
            vec![
                NodeRef::leaf(0b00).0,
                NodeRef::leaf(0b01).0,
                NodeRef::leaf(0b10).0,
                NodeRef::leaf(0b11).0
            ]
        );
        assert_eq!(b.positions, vec![0, 1]);
        assert_eq!(b.sparse, vec![0b00, 0b01, 0b10, 0b11]);
    }

    #[test]
    fn split_partitions_at_root() {
        let keys: Vec<u32> = (0..8).collect();
        let b = reference_builder(&keys, 8);
        let (pos, left, right) = b.split();
        // Root BiNode = smallest position. Keys 0..8 over 8 bits differ in
        // bits 5,6,7; the root splits at position 5 into 0..4 and 4..8.
        assert_eq!(pos, 5);
        assert_eq!(left.len(), 4);
        assert_eq!(right.len(), 4);
        left.check_invariants();
        right.check_invariants();
        assert_eq!(
            left.values,
            (0..4).map(|i| NodeRef::leaf(i).0).collect::<Vec<_>>()
        );
        assert_eq!(
            right.values,
            (4..8).map(|i| NodeRef::leaf(i).0).collect::<Vec<_>>()
        );
        // Sub-builders keep only internally-mixed positions.
        assert_eq!(left.positions, vec![6, 7]);
        assert_eq!(right.positions, vec![6, 7]);
        assert_eq!(left.sparse, vec![0b00, 0b01, 0b10, 0b11]);
        assert_eq!(right.sparse, left.sparse);
    }

    #[test]
    fn split_with_singleton_side() {
        // Keys 0,1,2 over 2 bits: root at position 0 -> left {0,1}, right {2}.
        let b = reference_builder(&[0b00, 0b01, 0b10], 2);
        let (pos, left, right) = b.split();
        assert_eq!(pos, 0);
        assert_eq!(left.len(), 2);
        assert_eq!(right.len(), 1);
        assert_eq!(right.values, vec![NodeRef::leaf(0b10).0]);
        assert!(right.positions.is_empty());
    }

    #[test]
    fn replace_entry_with_pair_pull_up() {
        // Parent with entries over position 0; pull up a BiNode at
        // position 4 under entry 1.
        let mut b = Builder::pair(0, NodeRef::leaf(10).0, NodeRef::leaf(20).0, 2);
        b.replace_entry_with_pair(1, 4, NodeRef::leaf(21).0, NodeRef::leaf(22).0);
        b.check_invariants();
        assert_eq!(b.positions, vec![0, 4]);
        assert_eq!(b.sparse, vec![0b00, 0b10, 0b11]);
        assert_eq!(
            b.values,
            vec![NodeRef::leaf(10).0, NodeRef::leaf(21).0, NodeRef::leaf(22).0]
        );
    }

    #[test]
    fn remove_entry_collapses_parent_binode() {
        // Full 2-bit trie; remove entry 0b01: its parent BiNode (position 1
        // on the left side) collapses, position 1 must survive (still used
        // on the right side).
        let mut b = Builder {
            positions: vec![0, 1],
            sparse: vec![0b00, 0b01, 0b10, 0b11],
            values: (0..4).map(|i| NodeRef::leaf(i).0).collect(),
            height: 1,
        };
        b.remove_entry(1);
        b.check_invariants();
        assert_eq!(b.positions, vec![0, 1]);
        assert_eq!(b.sparse, vec![0b00, 0b10, 0b11]);
        assert_eq!(
            b.values,
            vec![NodeRef::leaf(0).0, NodeRef::leaf(2).0, NodeRef::leaf(3).0]
        );
        // Now remove 0b11: position 1 becomes unused and is dropped.
        b.remove_entry(2);
        b.check_invariants();
        assert_eq!(b.positions, vec![0]);
        assert_eq!(b.sparse, vec![0b0, 0b1]);
    }

    #[test]
    fn remove_then_insert_roundtrip() {
        let keys = [3u32, 9, 17, 40, 41, 200, 201, 202];
        let full = reference_builder(&keys, 8);
        for victim in 0..keys.len() {
            let mut b = full.clone();
            b.remove_entry(victim);
            b.check_invariants();
            let remaining: Vec<u32> = keys
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != victim)
                .map(|(_, &k)| k)
                .collect();
            let expected = reference_builder(&remaining, 8);
            assert_eq!(b.positions, expected.positions, "victim {victim}");
            assert_eq!(b.sparse, expected.sparse, "victim {victim}");
            assert_eq!(b.values, expected.values, "victim {victim}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_through_physical_node() {
        let mem = MemCounter::default();
        let keys: Vec<u32> = vec![1, 5, 9, 100, 101, 162, 163, 255];
        let b = reference_builder(&keys, 8);
        let node_ref = b.encode(&mem);
        let decoded = Builder::decode(node_ref.as_raw());
        assert_eq!(decoded, b);
        // SAFETY: the node was only just encoded; no other reference exists.
        unsafe { node_ref.as_raw().free(&mem) };
        assert_eq!(mem.bytes(), 0);
    }

    #[test]
    fn encode_uses_minimal_layouts() {
        let mem = MemCounter::default();
        // 2 entries, 1 position in byte 0 -> Single8.
        let b = Builder::pair(4, NodeRef::leaf(1).0, NodeRef::leaf(2).0, 1);
        let r = b.encode(&mem);
        assert_eq!(r.tag(), NodeTag::Single8);
        // SAFETY: the node was only just encoded; no other reference exists.
        unsafe { r.as_raw().free(&mem) };

        // Positions spanning two distant bytes -> Multi8x8.
        let b = Builder {
            positions: vec![0, 100],
            sparse: vec![0b00, 0b01, 0b10],
            values: vec![
                NodeRef::leaf(0).0,
                NodeRef::leaf(1).0,
                NodeRef::leaf(2).0,
            ],
            height: 1,
        };
        let r = b.encode(&mem);
        assert_eq!(r.tag(), NodeTag::Multi8x8);
        // SAFETY: the node was only just encoded; no other reference exists.
        unsafe { r.as_raw().free(&mem) };
        assert_eq!(mem.bytes(), 0);
    }

    #[test]
    fn overflow_detection() {
        let keys: Vec<u32> = (0..32).collect();
        let mut b = reference_builder(&keys, 8);
        assert!(!b.overflowed());
        b.insert_entry(0, 0, 1, NodeRef::leaf(128).0);
        assert!(b.overflowed());
        b.check_invariants();
        let (_, left, right) = b.split();
        assert!(!left.overflowed() && !right.overflowed());
        assert_eq!(left.len() + right.len(), 33);
    }

    /// Adjacent-pair mismatch positions for `width`-bit keys, the bulk
    /// loader's boundary representation.
    fn mismatch_bounds(keys: &[u32], width: u16) -> Vec<u16> {
        keys.windows(2)
            .map(|w| {
                let diff = w[0] ^ w[1];
                assert_ne!(diff, 0, "sorted distinct");
                (diff.leading_zeros() as u16) - (32 - width)
            })
            .collect()
    }

    #[test]
    fn from_fragment_matches_reference_builder() {
        // The boundary-only reconstruction must reproduce the full
        // recursive Patricia linearization, including shared positions
        // (e.g. bit 4 discriminating in two sibling subtrees, Figure 5).
        let cases: Vec<(Vec<u32>, u16)> = vec![
            (vec![0b000, 0b001, 0b100, 0b110], 3),
            (vec![0b0000, 0b0100, 0b0110, 0b1000, 0b1100, 0b1110], 4),
            ((0..32).collect(), 8),
            (vec![1, 2, 4, 8, 16, 32, 64, 128], 8),
            (vec![3, 7, 11, 200, 201, 202, 255], 8),
        ];
        for (keys, width) in cases {
            let expected = reference_builder(&keys, width);
            let values: Vec<u64> = keys.iter().map(|&k| NodeRef::leaf(k as u64).0).collect();
            let got = Builder::from_fragment(&mismatch_bounds(&keys, width), &values);
            assert_eq!(got, expected, "keys {keys:?}");
            got.check_invariants();
        }
    }

    #[test]
    fn from_fragment_random_vs_reference() {
        // Deterministic LCG sweep over random key sets of every node size.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in 2..=32usize {
            for _ in 0..8 {
                let mut keys: Vec<u32> = Vec::with_capacity(n);
                while keys.len() < n {
                    let k = (next() & 0xFFFF) as u32;
                    if !keys.contains(&k) {
                        keys.push(k);
                    }
                }
                keys.sort_unstable();
                let expected = reference_builder(&keys, 16);
                let values: Vec<u64> =
                    keys.iter().map(|&k| NodeRef::leaf(k as u64).0).collect();
                let got = Builder::from_fragment(&mismatch_bounds(&keys, 16), &values);
                assert_eq!(got, expected, "n={n} keys {keys:?}");
            }
        }
    }
}
