//! Bottom-up sorted bulk loading (DESIGN.md §11).
//!
//! epoch-exempt: builds (and on failure frees) a private subtree that is
//! not published until the caller's single Release CAS — no concurrent
//! reader can reach these nodes, so no epoch pin is required.
//!
//! The COW insert path pays for generality: every key allocates, rebuilds
//! and frees nodes that the very next insert invalidates. When the input is
//! already sorted, the whole trie can instead be built bottom-up in one
//! pass — HOT nodes are immutable-once-published linearized blobs, ideal
//! for single-pass construction:
//!
//! 1. **Prepare** — one scan over the sorted `(key, tid)` pairs computes
//!    the *boundary array*: `bounds[i]` is the first mismatching bit
//!    between adjacent keys `i` and `i + 1`
//!    ([`hot_bits::first_mismatch_bit`]). Duplicates collapse (last write
//!    wins) and out-of-order input is rejected with
//!    [`BulkLoadError::Unsorted`]. After this pass the keys themselves are
//!    no longer needed: the binary Patricia trie over a sorted key set is
//!    exactly the min-Cartesian tree over `bounds`, so boundary positions
//!    alone determine every discriminative bit and sparse partial key.
//! 2. **Pack** — one bottom-up pass over the Patricia trie computes, for
//!    every BiNode `v`, the *minimum packing height* `H(v)`: the smallest
//!    `h` such that `v`'s subtree splits into at most `k = 32` parts that
//!    each pack into height `h - 1`, via the recurrence
//!    `W(v, h) = (H(left) ≤ h-1 ? 1 : W(left, h)) + (… right …)` and
//!    `H(v) = min h with W(v, h) ≤ k`. Construction then descends: each
//!    compound node takes exactly the forced-split part set (split a child
//!    iff `H(child) > h - 1`), which is the unique minimal partition for the
//!    minimal height — nodes are as tall-fragmented and as full as the
//!    trie's branching allows, and the overall trie height is provably
//!    minimal for the key set (height-optimality, Section 3 of the paper).
//!    The forced boundaries form a connected top fragment of the range's
//!    Patricia trie; [`Builder::from_fragment`] turns them into one compound
//!    node whose children are the recursively built parts. Each node is
//!    encoded exactly once — no intermediate COW churn — and heights are
//!    assigned bottom-up (`1 +` tallest child), so the result satisfies
//!    every `check_invariants()` height and ordering rule by construction.
//! 3. **Parallelize** — the root fragment's ≤ 32 parts are *partition
//!    fences*: independent contiguous subtries. [`build_parallel`] assigns
//!    them largest-first onto `std::thread` workers (the node allocator is
//!    already thread-local; the [`MemCounter`] is atomic), then grafts the
//!    finished subtrie roots under a root node built from the fence
//!    positions — the same node the sequential pass would build.

use crate::node::builder::Builder;
use crate::node::{MemCounter, NodeRef, MAX_FANOUT};
use hot_keys::{MAX_KEY_LEN, MAX_TID};

/// Rejected bulk-load input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkLoadError {
    /// `entries[index]` sorts strictly below its predecessor; building from
    /// unsorted input would silently produce a corrupt trie.
    Unsorted {
        /// Index of the first out-of-order entry.
        index: usize,
    },
    /// The target index already holds entries; bulk loading only constructs
    /// whole tries.
    NotEmpty,
}

impl std::fmt::Display for BulkLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulkLoadError::Unsorted { index } => {
                write!(f, "bulk-load input is not sorted at entry {index}")
            }
            BulkLoadError::NotEmpty => write!(f, "bulk load requires an empty index"),
        }
    }
}

impl std::error::Error for BulkLoadError {}

/// Validated, deduplicated bulk-load input: the value words plus the
/// boundary array. The keys themselves are not retained — construction
/// needs only the adjacent-pair mismatch positions.
#[derive(Debug)]
pub(crate) struct Prepared {
    /// TIDs in key order, duplicates collapsed (last write wins).
    pub tids: Vec<u64>,
    /// `bounds[i]` = first mismatching bit between (deduplicated) keys `i`
    /// and `i + 1`; length `tids.len() - 1`.
    pub bounds: Vec<u16>,
}

/// One scan: verify ascending order, collapse duplicates (last write wins)
/// and record every adjacent-pair mismatch position.
pub(crate) fn prepare<K: AsRef<[u8]>>(entries: &[(K, u64)]) -> Result<Prepared, BulkLoadError> {
    let n = entries.len();
    let mut tids: Vec<u64> = Vec::with_capacity(n);
    let mut bounds: Vec<u16> = Vec::with_capacity(n.saturating_sub(1));
    let mut prev: Option<&[u8]> = None;
    for (index, (key, tid)) in entries.iter().enumerate() {
        let key = key.as_ref();
        assert!(key.len() <= MAX_KEY_LEN, "key longer than MAX_KEY_LEN");
        assert!(*tid <= MAX_TID, "tid exceeds MAX_TID");
        if let Some(p) = prev {
            match hot_bits::first_mismatch_bit(p, key) {
                None => {
                    // Same key bytes: last write wins, deterministically.
                    *tids.last_mut().expect("prev implies an entry") = *tid;
                    continue;
                }
                Some(pos) => {
                    // Sorted ascending iff the predecessor holds the 0 at
                    // the first mismatching bit (keys are zero-padded).
                    if key_bit(p, pos) != 0 {
                        return Err(BulkLoadError::Unsorted { index });
                    }
                    bounds.push(pos as u16);
                }
            }
        }
        prev = Some(key);
        tids.push(*tid);
    }
    Ok(Prepared { tids, bounds })
}

/// Bit `pos` of `key` under the zero-padding convention.
#[inline]
fn key_bit(key: &[u8], pos: usize) -> u8 {
    let byte = pos / 8;
    if byte >= key.len() {
        0
    } else {
        (key[byte] >> (7 - pos % 8)) & 1
    }
}

/// Sentinel child index marking an entry leaf (a range of one key).
pub(crate) const ENTRY: usize = usize::MAX;

/// The sorted key set's binary Patricia trie, as the min-Cartesian tree
/// over the boundary array, plus the height-packing DP solved bottom-up.
/// BiNode `j` is boundary `j` (it separates entries `j` and `j + 1`);
/// `left[j]`/`right[j]` are child boundary indices or [`ENTRY`].
pub(crate) struct Shape {
    left: Vec<usize>,
    right: Vec<usize>,
    /// `h[j]` = minimum packing height of the subtrie rooted at BiNode `j`:
    /// the smallest `h` such that the subtrie splits into ≤ 32 parts each
    /// packable into height `h - 1`.
    h: Vec<u32>,
    /// Global Patricia root (the unique minimum boundary).
    pub(crate) root: usize,
}

/// One `O(n)` pass: build the min-Cartesian tree with a monotonic stack,
/// then solve the packing DP in post-order:
/// `W(j, h) = (h_left ≤ h-1 ? 1 : W(left, h)) + (h_right ≤ h-1 ? 1 : W(right, h))`,
/// `h[j] = min h with W(j, h) ≤ 32`. Since `W` only ever has to be
/// evaluated at `h = max(h_left, h_right, 1)` (anything larger is trivially
/// 2), each node needs just its own `(h, W(h))` pair.
pub(crate) fn analyze(bounds: &[u16]) -> Shape {
    let m = bounds.len();
    debug_assert!(m >= 1);
    let mut left = vec![ENTRY; m];
    let mut right = vec![ENTRY; m];
    let mut stack: Vec<usize> = Vec::new();
    for j in 0..m {
        let mut last = ENTRY;
        while let Some(&top) = stack.last() {
            // Strict `>`: the minimum over any contiguous range is unique,
            // so equal positions always belong to disjoint subtries.
            if bounds[top] > bounds[j] {
                last = stack.pop().expect("non-empty");
            } else {
                break;
            }
        }
        left[j] = last;
        if let Some(&top) = stack.last() {
            right[top] = j;
        }
        stack.push(j);
    }
    let root = stack[0];
    // Post-order DP. `w[j]` = part count of `j`'s forced-split set at its
    // own minimum height `h[j]`.
    let mut h = vec![0u32; m];
    let mut w = vec![0u32; m];
    let mut todo: Vec<(usize, bool)> = vec![(root, false)];
    while let Some((j, ready)) = todo.pop() {
        if !ready {
            todo.push((j, true));
            if left[j] != ENTRY {
                todo.push((left[j], false));
            }
            if right[j] != ENTRY {
                todo.push((right[j], false));
            }
            continue;
        }
        let side = |c: usize| if c == ENTRY { (0u32, 1u32) } else { (h[c], w[c]) };
        let (hl, wl) = side(left[j]);
        let (hr, wr) = side(right[j]);
        let hh = hl.max(hr).max(1);
        // Parts contributed per side: 1 if the whole side packs a level
        // below, else the side's own forced-split set flattens in.
        let ww = (if hl < hh { 1 } else { wl }) + (if hr < hh { 1 } else { wr });
        if ww as usize <= MAX_FANOUT {
            h[j] = hh;
            w[j] = ww;
        } else {
            // The 32-way fan-out is exhausted at `hh`; one level up both
            // sides pack whole.
            h[j] = hh + 1;
            w[j] = 2;
        }
    }
    Shape { left, right, h, root }
}

/// One part of a compound node's fragment: the inclusive entry range
/// `lo..=hi` plus its Patricia root BiNode (`ENTRY` for a single key).
#[derive(Clone, Copy)]
pub(crate) struct Part {
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) root: usize,
}

/// Collect the forced-split part set for the compound node packing BiNode
/// `j`'s subtrie (entry range `lo..=hi`): descend the Patricia trie from
/// `j`, stopping at every side that packs into height `h[j] - 1`. By the
/// [`analyze`] DP this yields `2..=32` parts, in entry order, and is the
/// unique minimal partition achieving the minimal height.
pub(crate) fn partition_node(shape: &Shape, j: usize, lo: usize, hi: usize, parts: &mut Vec<Part>) {
    let target = shape.h[j] - 1;
    descend(shape, j, lo, hi, target, parts);
}

fn descend(shape: &Shape, j: usize, lo: usize, hi: usize, target: u32, parts: &mut Vec<Part>) {
    // Left side covers entries `lo..=j`, right side `j + 1..=hi`.
    let sides = [(shape.left[j], lo, j), (shape.right[j], j + 1, hi)];
    for (c, slo, shi) in sides {
        if c == ENTRY {
            debug_assert_eq!(slo, shi);
            parts.push(Part { lo: slo, hi: shi, root: ENTRY });
        } else if shape.h[c] <= target {
            parts.push(Part { lo: slo, hi: shi, root: c });
        } else {
            descend(shape, c, slo, shi, target, parts);
        }
    }
}

/// Build the subtrie for `part`, bottom-up. Every compound node is encoded
/// exactly once, at exactly its DP-minimal height.
pub(crate) fn build_part(
    tids: &[u64],
    bounds: &[u16],
    shape: &Shape,
    part: Part,
    mem: &MemCounter,
) -> NodeRef {
    if part.root == ENTRY {
        return NodeRef::leaf(tids[part.lo]);
    }
    let mut parts = Vec::with_capacity(MAX_FANOUT);
    partition_node(shape, part.root, part.lo, part.hi, &mut parts);
    let fences: Vec<u16> = parts[..parts.len() - 1]
        .iter()
        .map(|p| bounds[p.hi])
        .collect();
    let values: Vec<u64> = parts
        .iter()
        .map(|&p| build_part(tids, bounds, shape, p, mem).0)
        .collect();
    Builder::from_fragment(&fences, &values).encode(mem)
}

/// Below this size the fan-out/join overhead outweighs parallel building.
const PARALLEL_MIN: usize = 4096;

/// Build the whole trie (`tids.len() >= 2`), constructing the root
/// fragment's subtries on up to `threads` worker threads and grafting them
/// under a root node built from the partition fences.
pub(crate) fn build_parallel(
    tids: &[u64],
    bounds: &[u16],
    mem: &MemCounter,
    threads: usize,
) -> NodeRef {
    let n = tids.len();
    debug_assert!(n >= 2);
    let shape = analyze(bounds);
    let whole = Part { lo: 0, hi: n - 1, root: shape.root };
    if threads <= 1 || n < PARALLEL_MIN {
        return build_part(tids, bounds, &shape, whole, mem);
    }
    let mut parts = Vec::with_capacity(MAX_FANOUT);
    partition_node(&shape, shape.root, 0, n - 1, &mut parts);
    let fences: Vec<u16> = parts[..parts.len() - 1]
        .iter()
        .map(|p| bounds[p.hi])
        .collect();
    // Largest-first assignment of the ≤ 32 independent subtries onto the
    // workers: sort by width, then always hand the next subtrie to the
    // least-loaded bin.
    let mut order: Vec<usize> = (0..parts.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(parts[i].hi - parts[i].lo));
    let bins = threads.min(parts.len());
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); bins];
    let mut load = vec![0usize; bins];
    for pi in order {
        let bin = (0..bins).min_by_key(|&b| load[b]).expect("bins >= 1");
        load[bin] += parts[pi].hi - parts[pi].lo + 1;
        assignment[bin].push(pi);
    }
    let mut values = vec![0u64; parts.len()];
    std::thread::scope(|scope| {
        let parts = &parts;
        let shape = &shape;
        let handles: Vec<_> = assignment
            .iter()
            .filter(|bin| !bin.is_empty())
            .map(|bin| {
                scope.spawn(move || {
                    bin.iter()
                        .map(|&pi| (pi, build_part(tids, bounds, shape, parts[pi], mem).0))
                        .collect::<Vec<(usize, u64)>>()
                })
            })
            .collect();
        for handle in handles {
            for (pi, word) in handle.join().expect("bulk-load worker panicked") {
                values[pi] = word;
            }
        }
    });
    Builder::from_fragment(&fences, &values).encode(mem)
}

/// Free a just-built subtree that could not be published (e.g. a lost
/// root CAS in [`ConcurrentHot::bulk_load`](crate::sync::ConcurrentHot::bulk_load)).
pub(crate) fn free_subtree(r: NodeRef, mem: &MemCounter) {
    if r.is_node() {
        let raw = r.as_raw();
        for i in 0..raw.count() {
            free_subtree(raw.value(i), mem);
        }
        // SAFETY: the subtree was never published; this thread is its sole
        // owner.
        unsafe { raw.free(mem) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(keys: &[u64]) -> Vec<([u8; 8], u64)> {
        keys.iter().map(|&k| (hot_keys::encode_u64(k), k)).collect()
    }

    #[test]
    fn prepare_computes_boundaries() {
        let p = prepare(&pairs(&[1, 2, 3])).unwrap();
        assert_eq!(p.tids, vec![1, 2, 3]);
        // 1→2 first differ at bit 62 (…01 vs …10), 2→3 at bit 63.
        assert_eq!(p.bounds, vec![62, 63]);
    }

    #[test]
    fn prepare_rejects_unsorted() {
        assert_eq!(
            prepare(&pairs(&[1, 3, 2])).unwrap_err(),
            BulkLoadError::Unsorted { index: 2 }
        );
        assert_eq!(
            prepare(&pairs(&[5, 1])).unwrap_err(),
            BulkLoadError::Unsorted { index: 1 }
        );
    }

    #[test]
    fn prepare_last_write_wins_on_duplicates() {
        let entries: Vec<([u8; 8], u64)> = vec![
            (hot_keys::encode_u64(7), 70),
            (hot_keys::encode_u64(9), 90),
            (hot_keys::encode_u64(9), 91),
            (hot_keys::encode_u64(9), 92),
            (hot_keys::encode_u64(12), 120),
        ];
        let p = prepare(&entries).unwrap();
        assert_eq!(p.tids, vec![70, 92, 120]);
        assert_eq!(p.bounds.len(), 2);
    }

    #[test]
    fn prepare_empty_and_singleton() {
        let p = prepare::<[u8; 8]>(&[]).unwrap();
        assert!(p.tids.is_empty() && p.bounds.is_empty());
        let p = prepare(&pairs(&[42])).unwrap();
        assert_eq!(p.tids, vec![42]);
        assert!(p.bounds.is_empty());
    }

    #[test]
    fn partition_covers_range_contiguously() {
        // 64 entries: parts must partition 0..=63 into 2..=32 contiguous runs.
        let keys: Vec<u64> = (0..64).collect();
        let p = prepare(&pairs(&keys)).unwrap();
        let shape = analyze(&p.bounds);
        let mut parts = Vec::new();
        partition_node(&shape, shape.root, 0, 63, &mut parts);
        assert!(parts.len() >= 2 && parts.len() <= MAX_FANOUT);
        assert_eq!(parts.first().unwrap().lo, 0);
        assert_eq!(parts.last().unwrap().hi, 63);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo, "contiguous parts");
        }
        // Dense consecutive integers branch perfectly: the DP packs two
        // full 32-leaf halves under a height-2 root.
        assert_eq!(shape.h[shape.root], 2);
        assert_eq!(parts.len(), 2);
        assert_eq!((parts[0].lo, parts[0].hi), (0, 31));
        assert_eq!((parts[1].lo, parts[1].hi), (32, 63));
    }

    #[test]
    fn analyze_packs_small_sets_into_one_node() {
        // Any <= 32-key set packs into a single height-1 node.
        for n in [2usize, 3, 17, 32] {
            let keys: Vec<u64> = (0..n as u64).map(|i| i * 977).collect();
            let p = prepare(&pairs(&keys)).unwrap();
            let shape = analyze(&p.bounds);
            assert_eq!(shape.h[shape.root], 1, "n={n}");
            let mut parts = Vec::new();
            partition_node(&shape, shape.root, 0, n - 1, &mut parts);
            assert_eq!(parts.len(), n, "n={n}: every part is a single entry");
            assert!(parts.iter().all(|p| p.root == ENTRY));
        }
    }
}
