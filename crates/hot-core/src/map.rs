//! A self-contained ordered map on top of [`HotTrie`].
//!
//! [`HotMap`] owns its keys and values in heap-allocated leaf records and
//! uses the record addresses as TIDs — the same trick a main-memory DBMS
//! plays when the "tuple" is the record itself. This gives HOT the API shape
//! of `BTreeMap<Vec<u8>, V>` while keeping the index itself key-free.

use crate::trie::HotTrie;
use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, KEY_SCRATCH_LEN};

/// One owned leaf record: the key bytes plus the value.
struct Record<V> {
    key: Box<[u8]>,
    value: V,
}

/// Key source that interprets TIDs as `Record` addresses.
///
/// Records are boxed and never move while referenced by the trie, so the
/// derefs are sound as long as the map only hands out TIDs of live records —
/// which [`HotMap`] guarantees by removing a key from the trie before
/// dropping its record.
struct RecordSource<V> {
    _marker: std::marker::PhantomData<fn() -> V>,
}

// SAFETY: resolving a record address is position-independent and the map's
// synchronization story is inherited from &HotMap/&mut HotMap.
unsafe impl<V> Sync for RecordSource<V> {}

impl<V> KeySource for RecordSource<V> {
    #[inline]
    fn load_key<'a>(&'a self, tid: u64, _scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        // SAFETY: tids handed to the trie are addresses of live boxed
        // records owned by the map (see HotMap::insert/remove).
        let record = unsafe { &*(tid as *const Record<V>) };
        &record.key
    }
}

/// An ordered map from byte-string keys to values `V`, indexed by a Height
/// Optimized Trie.
///
/// Keys must be prefix-free as a set (no key may be a strict prefix of
/// another); use the encoders in [`hot_keys::encode`]. Keys are limited to
/// [`MAX_KEY_LEN`](hot_keys::MAX_KEY_LEN) bytes.
///
/// ```
/// let mut map = hot_core::HotMap::new();
/// map.insert(&hot_keys::str_key(b"hot").unwrap(), "height optimized trie");
/// map.insert(&hot_keys::str_key(b"art").unwrap(), "adaptive radix tree");
/// assert_eq!(map.get(&hot_keys::str_key(b"hot").unwrap()), Some(&"height optimized trie"));
/// assert_eq!(map.len(), 2);
/// ```
pub struct HotMap<V> {
    trie: HotTrie<RecordSource<V>>,
    record_bytes: usize,
}

impl<V> Default for HotMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> HotMap<V> {
    /// Create an empty map.
    pub fn new() -> Self {
        HotMap {
            trie: HotTrie::new(RecordSource {
                _marker: std::marker::PhantomData,
            }),
            record_bytes: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    fn record_footprint(key_len: usize) -> usize {
        std::mem::size_of::<Record<V>>() + key_len
    }

    /// Insert `key → value`; returns the previous value if present.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let record = Box::new(Record {
            key: key.to_vec().into_boxed_slice(),
            value,
        });
        let tid = Box::into_raw(record) as u64;
        debug_assert_eq!(tid >> 63, 0, "heap addresses fit in 63 bits");
        match self.trie.insert(key, tid) {
            None => {
                self.record_bytes += Self::record_footprint(key.len());
                None
            }
            Some(old_tid) => {
                // SAFETY: old_tid was created by Box::into_raw above in a
                // previous insert and is no longer referenced by the trie.
                let old = unsafe { Box::from_raw(old_tid as *mut Record<V>) };
                Some(old.value)
            }
        }
    }

    /// Build the map bottom-up from entries sorted ascending by key — the
    /// map-level face of [`HotTrie::bulk_load`]. The map must be empty.
    /// Duplicate keys collapse last-write-wins (earlier values are dropped);
    /// unsorted input returns [`BulkLoadError::Unsorted`] and leaves the map
    /// empty. Returns the number of distinct keys loaded.
    ///
    /// [`BulkLoadError::Unsorted`]: crate::BulkLoadError::Unsorted
    pub fn bulk_load<K: AsRef<[u8]>>(
        &mut self,
        entries: Vec<(K, V)>,
    ) -> Result<usize, crate::BulkLoadError> {
        // Materialize the records first, collapsing *adjacent* duplicates
        // (which is full dedup on sorted input) so that on success every
        // record is referenced by exactly one trie leaf — no orphans to
        // leak, no double ownership.
        let mut records: Vec<Box<Record<V>>> = Vec::with_capacity(entries.len());
        for (key, value) in entries {
            let key = key.as_ref();
            if let Some(last) = records.last_mut() {
                if &*last.key == key {
                    last.value = value;
                    continue;
                }
            }
            records.push(Box::new(Record {
                key: key.to_vec().into_boxed_slice(),
                value,
            }));
        }
        let pairs: Vec<(&[u8], u64)> = records
            .iter()
            .map(|r| {
                let tid = &**r as *const Record<V> as u64;
                debug_assert_eq!(tid >> 63, 0, "heap addresses fit in 63 bits");
                (&r.key[..], tid)
            })
            .collect();
        match self.trie.bulk_load(&pairs) {
            Ok(n) => {
                debug_assert_eq!(n, records.len(), "pre-deduped input stays distinct");
                for record in records {
                    self.record_bytes += Self::record_footprint(record.key.len());
                    let _ = Box::into_raw(record); // now owned via the trie
                }
                Ok(n)
            }
            // The trie was left untouched; the records drop here.
            Err(e) => Err(e),
        }
    }

    /// Get a reference to the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Option<&V> {
        let tid = self.trie.get(key)?;
        // SAFETY: the trie only holds TIDs of live records owned by self.
        Some(unsafe { &(*(tid as *const Record<V>)).value })
    }

    /// Get a mutable reference to the value stored under `key`.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut V> {
        let tid = self.trie.get(key)?;
        // SAFETY: as in `get`, plus &mut self guarantees exclusivity.
        Some(unsafe { &mut (*(tid as *mut Record<V>)).value })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.trie.contains(key)
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &[u8]) -> Option<V> {
        let tid = self.trie.remove(key)?;
        self.record_bytes -= Self::record_footprint(key.len());
        // SAFETY: the trie no longer references the record.
        let record = unsafe { Box::from_raw(tid as *mut Record<V>) };
        Some(record.value)
    }

    /// Iterate `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &V)> + '_ {
        self.trie.iter().map(|tid| {
            // SAFETY: live record owned by self.
            let record = unsafe { &*(tid as *const Record<V>) };
            (&record.key[..], &record.value)
        })
    }

    /// Iterate `(key, value)` pairs with keys `>= key`, ascending.
    pub fn range_from<'a>(&'a self, key: &[u8]) -> impl Iterator<Item = (&'a [u8], &'a V)> + 'a {
        self.trie.range_from(key).map(|tid| {
            // SAFETY: live record owned by self.
            let record = unsafe { &*(tid as *const Record<V>) };
            (&record.key[..], &record.value)
        })
    }

    /// Iterate `(key, value)` pairs with `start <= key < end`, ascending.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], &'a V)> + 'a {
        self.range_from(start).take_while(move |(k, _)| *k < end)
    }

    /// Index + record memory footprint.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut stats = self.trie.memory_stats();
        stats.aux_bytes = self.record_bytes;
        stats
    }

    /// Leaf-depth histogram of the underlying trie.
    pub fn depth_stats(&self) -> DepthStats {
        self.trie.depth_stats()
    }

    /// Structural invariant check (test support).
    pub fn validate(&self) {
        self.trie.validate();
    }
}

impl<V> Drop for HotMap<V> {
    fn drop(&mut self) {
        for tid in self.trie.iter() {
            // SAFETY: dropping the map; every record is owned and dropped
            // exactly once (trie iteration yields each TID once).
            unsafe { drop(Box::from_raw(tid as *mut Record<V>)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, str_key};

    #[test]
    fn insert_get_remove() {
        let mut map = HotMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(b"alpha\0", 1), None);
        assert_eq!(map.insert(b"beta\0", 2), None);
        assert_eq!(map.insert(b"alpha\0", 10), Some(1));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(b"alpha\0"), Some(&10));
        assert_eq!(map.get(b"beta\0"), Some(&2));
        assert_eq!(map.get(b"gamma\0"), None);
        assert_eq!(map.remove(b"alpha\0"), Some(10));
        assert_eq!(map.remove(b"alpha\0"), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut map = HotMap::new();
        map.insert(b"counter\0", 0u64);
        *map.get_mut(b"counter\0").unwrap() += 41;
        *map.get_mut(b"counter\0").unwrap() += 1;
        assert_eq!(map.get(b"counter\0"), Some(&42));
    }

    #[test]
    fn ordered_iteration_and_range() {
        let mut map = HotMap::new();
        let words = ["pear", "apple", "orange", "banana", "plum"];
        for (i, w) in words.iter().enumerate() {
            map.insert(&str_key(w.as_bytes()).unwrap(), i);
        }
        let keys: Vec<Vec<u8>> = map.iter().map(|(k, _)| k.to_vec()).collect();
        let mut sorted: Vec<Vec<u8>> = words
            .iter()
            .map(|w| str_key(w.as_bytes()).unwrap())
            .collect();
        sorted.sort();
        assert_eq!(keys, sorted);

        let from_b: Vec<&str> = map
            .range_from(&str_key(b"banana").unwrap())
            .map(|(k, _)| std::str::from_utf8(&k[..k.len() - 1]).unwrap())
            .collect();
        assert_eq!(from_b, vec!["banana", "orange", "pear", "plum"]);
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let mut map = HotMap::new();
            for i in 0u64..100 {
                map.insert(&encode_u64(i), Rc::clone(&probe));
            }
            for i in 0u64..50 {
                map.remove(&encode_u64(i));
            }
            assert_eq!(Rc::strong_count(&probe), 51);
        }
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn memory_stats_track_records() {
        let mut map = HotMap::new();
        for i in 0u64..100 {
            map.insert(&encode_u64(i), i);
        }
        let stats = map.memory_stats();
        assert_eq!(stats.key_count, 100);
        assert!(stats.aux_bytes >= 100 * 8);
        assert!(stats.node_bytes > 0);
        let aux_before = stats.aux_bytes;
        let mut map = map;
        for i in 0u64..100 {
            map.remove(&encode_u64(i));
        }
        let stats = map.memory_stats();
        assert_eq!(stats.aux_bytes, 0);
        assert!(stats.aux_bytes < aux_before);
        assert_eq!(stats.node_bytes, 0);
    }

    #[test]
    fn bulk_load_sorted_entries() {
        let mut map = HotMap::new();
        let entries: Vec<([u8; 8], u64)> = (0..5000u64).map(|i| (encode_u64(i * 3), i)).collect();
        assert_eq!(map.bulk_load(entries), Ok(5000));
        assert_eq!(map.len(), 5000);
        assert_eq!(map.get(&encode_u64(42)), Some(&14));
        assert_eq!(map.get(&encode_u64(43)), None);
        map.validate();
        let in_order: Vec<u64> = map.iter().map(|(_, &v)| v).collect();
        assert_eq!(in_order, (0..5000).collect::<Vec<u64>>());
    }

    #[test]
    fn bulk_load_duplicates_and_errors_leak_nothing() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let mut map = HotMap::new();
            // Sorted with duplicates: last value wins, earlier ones drop.
            let entries = vec![
                (encode_u64(1), Rc::clone(&probe)),
                (encode_u64(2), Rc::clone(&probe)),
                (encode_u64(2), Rc::clone(&probe)),
                (encode_u64(3), Rc::clone(&probe)),
            ];
            assert_eq!(map.bulk_load(entries), Ok(3));
            assert_eq!(Rc::strong_count(&probe), 4);

            // Unsorted input: rejected, and every record is freed.
            let mut other = HotMap::new();
            let bad = vec![
                (encode_u64(9), Rc::clone(&probe)),
                (encode_u64(1), Rc::clone(&probe)),
            ];
            assert!(other.bulk_load(bad).is_err());
            assert!(other.is_empty());
            assert_eq!(Rc::strong_count(&probe), 4);
        }
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn thousand_integers_validate() {
        let mut map = HotMap::new();
        for i in 0u64..1000 {
            map.insert(&encode_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)), i);
        }
        assert_eq!(map.len(), 1000);
        map.validate();
    }
}
