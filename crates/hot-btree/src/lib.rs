//! Cache-optimized in-memory B+-tree — the paper's "BT" baseline.
//!
//! Modeled on the STX B+-tree setup of Section 6.1: "The default node size
//! is 256 bytes which in the case of 16 bytes per slot (8 bytes key + 8
//! bytes value) amounts to a node fanout of 16." Slots hold 64-bit words:
//! keys of up to 8 bytes are embedded directly; longer keys are represented
//! by their TID and every comparison resolves the key through the
//! [`KeySource`] — which is why the B-tree's memory footprint is identical
//! for all data sets (Figure 9) and why its string performance trails the
//! tries (Figure 8).
//!
//! Intra-node search is a simple ascending scan (linear search beats binary
//! search at fanout 16 on modern CPUs); leaves carry no sibling pointers —
//! range scans run over a cursor stack, like the tries, keeping all
//! structures comparable.

#![deny(missing_docs)]

use hot_keys::stats::MemoryStats;
use hot_keys::{DepthStats, KeySource, MAX_TID};
use std::cmp::Ordering;

/// Maximum slots per node: 256-byte nodes, 16 bytes per slot.
pub const FANOUT: usize = 16;
const MIN_FILL: usize = FANOUT / 2;

/// One tree node. Leaves store (key-word, tid) slots; inner nodes store
/// separator key-words and child pointers.
#[allow(clippy::vec_box)] // boxed children keep split/merge moves O(1) per child
enum Node {
    Leaf {
        /// Key words (embedded key or TID; compared through the source).
        keys: Vec<u64>,
        /// Tuple identifiers parallel to `keys`.
        tids: Vec<u64>,
    },
    Inner {
        /// `seps[i]` is the smallest key word in `children[i + 1]`.
        seps: Vec<u64>,
        children: Vec<Box<Node>>,
    },
}

impl Node {
    fn new_leaf() -> Node {
        Node::Leaf {
            keys: Vec::with_capacity(FANOUT),
            tids: Vec::with_capacity(FANOUT),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }

    fn node_bytes(&self) -> usize {
        // Fixed 256-byte slot area plus the header, mirroring STX's
        // fixed-size nodes (capacity is reserved up front).
        std::mem::size_of::<Node>() + FANOUT * 16
    }
}

/// The B+-tree index: key words resolved through a [`KeySource`], exactly
/// like the trie structures in this workspace.
pub struct BPlusTree<S> {
    root: Option<Box<Node>>,
    source: S,
    len: usize,
}

/// Result of an insert into a subtree: possibly a split with the new right
/// sibling and its separator.
enum InsertResult {
    Done(Option<u64>),
    Split { sep: u64, right: Box<Node> },
}

impl<S: KeySource> BPlusTree<S> {
    /// Create an empty tree resolving keys through `source`.
    pub fn new(source: S) -> Self {
        BPlusTree {
            root: None,
            source,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Access the key source.
    pub fn source(&self) -> &S {
        &self.source
    }

    #[inline]
    fn cmp(&self, word: u64, key: &[u8]) -> Ordering {
        self.source.cmp_tid_key(word, key)
    }

    /// Position of the first slot whose key is `>= key`.
    #[inline]
    fn lower_bound(&self, keys: &[u64], key: &[u8]) -> usize {
        // Linear scan: fanout 16 fits two cache lines; this is the
        // "cache-optimized" part of the STX design.
        keys.iter()
            .position(|&w| self.cmp(w, key) != Ordering::Less)
            .unwrap_or(keys.len())
    }

    /// Child index to descend into for `key`.
    #[inline]
    fn child_index(&self, seps: &[u64], key: &[u8]) -> usize {
        seps.iter()
            .position(|&w| self.cmp(w, key) == Ordering::Greater)
            .unwrap_or(seps.len())
    }

    /// Look up `key`; returns its TID if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Inner { seps, children } => {
                    node = &children[self.child_index(seps, key)];
                }
                Node::Leaf { keys, tids } => {
                    let i = self.lower_bound(keys, key);
                    if i < keys.len() && self.cmp(keys[i], key) == Ordering::Equal {
                        return Some(tids[i]);
                    }
                    return None;
                }
            }
        }
    }

    /// Insert `key → tid` (upsert); the slot key word is `tid` itself
    /// (embedded key or tuple identifier). Returns the previous TID if the
    /// key was present.
    pub fn insert(&mut self, key: &[u8], tid: u64) -> Option<u64> {
        assert!(tid <= MAX_TID, "tid exceeds MAX_TID");
        if self.root.is_none() {
            self.root = Some(Box::new(Node::new_leaf()));
        }
        let root = self.root.as_mut().expect("just ensured");
        let result = Self::insert_rec(&self.source, root, key, tid);
        match result {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split { sep, right } => {
                let old_root = self.root.take().expect("non-empty");
                self.root = Some(Box::new(Node::Inner {
                    seps: vec![sep],
                    children: vec![old_root, right],
                }));
                self.len += 1;
                None
            }
        }
    }

    /// Bulk-build the tree from key-sorted `(key, tid)` pairs (duplicate
    /// keys collapse, last write wins), bottom-up: the deduplicated TID
    /// words fill leaves level by level, every level distributing its slots
    /// as evenly as possible over `ceil(n / 16)` nodes so each node holds at
    /// least `MIN_FILL` entries (the classic B+-tree bulk load), with
    /// `seps[i]` taken as the first word of `children[i + 1]`'s run. All
    /// leaves end up at the same depth and no transient splits happen.
    ///
    /// Returns the number of distinct keys loaded.
    ///
    /// # Panics
    /// Panics if the tree is not empty or the input is not sorted
    /// ascending.
    pub fn bulk_load<K: AsRef<[u8]>>(&mut self, entries: &[(K, u64)]) -> usize {
        assert!(
            self.root.is_none() && self.len == 0,
            "bulk load requires an empty tree"
        );
        let mut words: Vec<u64> = Vec::with_capacity(entries.len());
        let mut prev: Option<&[u8]> = None;
        for (key, tid) in entries {
            let key = key.as_ref();
            assert!(*tid <= MAX_TID, "tid exceeds MAX_TID");
            match prev {
                Some(p) if p == key => {
                    *words.last_mut().expect("prev implies an entry") = *tid;
                    continue;
                }
                Some(p) => assert!(p < key, "bulk-load input is not sorted"),
                None => {}
            }
            prev = Some(key);
            words.push(*tid);
        }
        let n = words.len();
        if n == 0 {
            return 0;
        }
        // Leaf level: (first word of the run, node) pairs.
        let mut level: Vec<(u64, Box<Node>)> = even_chunks(n)
            .map(|(a, b)| {
                let keys = words[a..b].to_vec();
                (
                    words[a],
                    Box::new(Node::Leaf {
                        tids: keys.clone(),
                        keys,
                    }),
                )
            })
            .collect();
        // Stack inner levels until one node remains.
        while level.len() > 1 {
            let ranges: Vec<(usize, usize)> = even_chunks(level.len()).collect();
            let mut nodes = level.into_iter();
            let mut next: Vec<(u64, Box<Node>)> = Vec::with_capacity(ranges.len());
            for (a, b) in ranges {
                let group: Vec<(u64, Box<Node>)> =
                    (a..b).map(|_| nodes.next().expect("sized")).collect();
                let min = group[0].0;
                let seps: Vec<u64> = group[1..].iter().map(|g| g.0).collect();
                let children: Vec<Box<Node>> = group.into_iter().map(|g| g.1).collect();
                next.push((min, Box::new(Node::Inner { seps, children })));
            }
            level = next;
        }
        self.root = Some(level.pop().expect("one node remains").1);
        self.len = n;
        n
    }

    fn insert_rec(source: &S, node: &mut Node, key: &[u8], tid: u64) -> InsertResult {
        match node {
            Node::Leaf { keys, tids } => {
                let i = keys
                    .iter()
                    .position(|&w| source.cmp_tid_key(w, key) != Ordering::Less)
                    .unwrap_or(keys.len());
                if i < keys.len() && source.cmp_tid_key(keys[i], key) == Ordering::Equal {
                    let old = tids[i];
                    keys[i] = tid;
                    tids[i] = tid;
                    return InsertResult::Done(Some(old));
                }
                keys.insert(i, tid);
                tids.insert(i, tid);
                if keys.len() <= FANOUT {
                    return InsertResult::Done(None);
                }
                // Split in half; the right half's first key separates.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_tids = tids.split_off(mid);
                let sep = right_keys[0];
                InsertResult::Split {
                    sep,
                    right: Box::new(Node::Leaf {
                        keys: right_keys,
                        tids: right_tids,
                    }),
                }
            }
            Node::Inner { seps, children } => {
                let at = seps
                    .iter()
                    .position(|&w| source.cmp_tid_key(w, key) == Ordering::Greater)
                    .unwrap_or(seps.len());
                match Self::insert_rec(source, &mut children[at], key, tid) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split { sep, right } => {
                        seps.insert(at, sep);
                        children.insert(at + 1, right);
                        if children.len() <= FANOUT {
                            return InsertResult::Done(None);
                        }
                        let mid = children.len() / 2;
                        // Separator moving up is the one between the halves.
                        let up = seps[mid - 1];
                        let right_seps = seps.split_off(mid);
                        seps.pop(); // `up` moves to the parent
                        let right_children = children.split_off(mid);
                        InsertResult::Split {
                            sep: up,
                            right: Box::new(Node::Inner {
                                seps: right_seps,
                                children: right_children,
                            }),
                        }
                    }
                }
            }
        }
    }

    /// Remove `key`; returns its TID if present. Underflowing nodes borrow
    /// from or merge with a sibling, keeping all non-root nodes at least
    /// half full.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let root = self.root.as_mut()?;
        let removed = Self::remove_rec(&self.source, root, key)?;
        self.len -= 1;
        // Shrink the root: an inner root with one child collapses; an empty
        // leaf root empties the tree.
        loop {
            match self.root.as_deref_mut() {
                Some(Node::Inner { children, .. }) if children.len() == 1 => {
                    let only = children.pop().expect("one child");
                    self.root = Some(only);
                }
                Some(Node::Leaf { keys, .. }) if keys.is_empty() => {
                    self.root = None;
                    break;
                }
                _ => break,
            }
        }
        Some(removed)
    }

    fn remove_rec(source: &S, node: &mut Node, key: &[u8]) -> Option<u64> {
        match node {
            Node::Leaf { keys, tids } => {
                let i = keys
                    .iter()
                    .position(|&w| source.cmp_tid_key(w, key) != Ordering::Less)?;
                if i >= keys.len() || source.cmp_tid_key(keys[i], key) != Ordering::Equal {
                    return None;
                }
                keys.remove(i);
                Some(tids.remove(i))
            }
            Node::Inner { seps, children } => {
                let at = seps
                    .iter()
                    .position(|&w| source.cmp_tid_key(w, key) == Ordering::Greater)
                    .unwrap_or(seps.len());
                let removed = Self::remove_rec(source, &mut children[at], key)?;
                if children[at].len() < MIN_FILL {
                    Self::rebalance(seps, children, at);
                }
                Some(removed)
            }
        }
    }

    /// Fix an underflow at `children[at]` by borrowing from or merging with
    /// the left or right sibling.
    #[allow(clippy::vec_box)]
    fn rebalance(seps: &mut Vec<u64>, children: &mut Vec<Box<Node>>, at: usize) {
        let (left, right, sep_idx) = if at > 0 {
            (at - 1, at, at - 1)
        } else if at + 1 < children.len() {
            (at, at + 1, at)
        } else {
            return; // single child: only possible at the root, handled above
        };

        // Try to borrow when the sibling has spare slots, else merge.
        let sibling_len = children[if left == at { right } else { left }].len();
        let (a, b) = children.split_at_mut(right);
        let (lnode, rnode) = (a[left].as_mut(), b[0].as_mut());

        match (lnode, rnode) {
            (
                Node::Leaf { keys: lk, tids: lt },
                Node::Leaf { keys: rk, tids: rt },
            ) => {
                if sibling_len > MIN_FILL {
                    if left == at {
                        // Borrow the right sibling's first slot.
                        lk.push(rk.remove(0));
                        lt.push(rt.remove(0));
                    } else {
                        // Borrow the left sibling's last slot.
                        rk.insert(0, lk.pop().expect("non-empty"));
                        rt.insert(0, lt.pop().expect("non-empty"));
                    }
                    seps[sep_idx] = rk[0];
                } else {
                    lk.append(rk);
                    lt.append(rt);
                    seps.remove(sep_idx);
                    children.remove(right);
                }
            }
            (
                Node::Inner {
                    seps: ls,
                    children: lc,
                },
                Node::Inner {
                    seps: rs,
                    children: rc,
                },
            ) => {
                if sibling_len > MIN_FILL {
                    if left == at {
                        ls.push(seps[sep_idx]);
                        seps[sep_idx] = rs.remove(0);
                        lc.push(rc.remove(0));
                    } else {
                        rs.insert(0, seps[sep_idx]);
                        seps[sep_idx] = ls.pop().expect("non-empty");
                        rc.insert(0, lc.pop().expect("non-empty"));
                    }
                } else {
                    ls.push(seps[sep_idx]);
                    ls.append(rs);
                    lc.append(rc);
                    seps.remove(sep_idx);
                    children.remove(right);
                }
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    /// Iterator over all TIDs in ascending key order.
    pub fn iter(&self) -> Cursor<'_> {
        let mut frames = Vec::new();
        if let Some(root) = self.root.as_deref() {
            frames.push((root, 0usize));
        }
        Cursor { frames }
    }

    /// Iterator over TIDs with keys `>= key`, ascending.
    pub fn range_from(&self, key: &[u8]) -> Cursor<'_> {
        let mut frames = Vec::new();
        let mut node = match self.root.as_deref() {
            Some(n) => n,
            None => return Cursor { frames },
        };
        loop {
            match node {
                Node::Inner { seps, children } => {
                    let at = self.child_index(seps, key);
                    frames.push((node, at + 1));
                    node = &children[at];
                }
                Node::Leaf { keys, .. } => {
                    let i = self.lower_bound(keys, key);
                    frames.push((node, i));
                    break;
                }
            }
        }
        Cursor { frames }
    }

    /// Collect up to `limit` TIDs with keys `>= key`.
    pub fn scan(&self, key: &[u8], limit: usize) -> Vec<u64> {
        self.range_from(key).take(limit).collect()
    }

    /// Memory footprint: every node accounts for its fixed 256-byte slot
    /// area plus header, independent of fill (STX-style fixed-size nodes).
    pub fn memory_stats(&self) -> MemoryStats {
        fn walk(node: &Node) -> (usize, usize) {
            let mut bytes = node.node_bytes();
            let mut count = 1;
            if let Node::Inner { children, .. } = node {
                for c in children {
                    let (b, n) = walk(c);
                    bytes += b;
                    count += n;
                }
            }
            (bytes, count)
        }
        let (node_bytes, node_count) = self.root.as_deref().map(walk).unwrap_or((0, 0));
        MemoryStats {
            node_bytes,
            node_count,
            aux_bytes: 0,
            key_count: self.len,
            capacity_bytes: 0,
        }
    }

    /// Leaf-depth histogram (all leaves share the B-tree's uniform depth).
    pub fn depth_stats(&self) -> DepthStats {
        let mut stats = DepthStats::new();
        fn walk(node: &Node, depth: usize, stats: &mut DepthStats) {
            match node {
                Node::Leaf { keys, .. } => stats.record_n(depth, keys.len() as u64),
                Node::Inner { children, .. } => {
                    for c in children {
                        walk(c, depth + 1, stats);
                    }
                }
            }
        }
        if let Some(root) = self.root.as_deref() {
            walk(root, 1, &mut stats);
        }
        stats
    }

    /// Structural invariant check (test support): sorted slots, separator
    /// correctness, fill factors, uniform leaf depth.
    pub fn validate(&self) {
        let Some(root) = self.root.as_deref() else {
            assert_eq!(self.len, 0);
            return;
        };
        let mut scratch = [0u8; hot_keys::KEY_SCRATCH_LEN];
        let mut leaf_depths = Vec::new();
        let mut count = 0usize;
        let mut last: Option<Vec<u8>> = None;
        self.validate_rec(root, 1, true, &mut leaf_depths, &mut count, &mut last, &mut scratch);
        assert_eq!(count, self.len, "leaf slot count equals len");
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "all leaves at the same depth"
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_rec(
        &self,
        node: &Node,
        depth: usize,
        is_root: bool,
        leaf_depths: &mut Vec<usize>,
        count: &mut usize,
        last: &mut Option<Vec<u8>>,
        scratch: &mut [u8; hot_keys::KEY_SCRATCH_LEN],
    ) {
        match node {
            Node::Leaf { keys, tids } => {
                assert!(keys.len() <= FANOUT);
                assert!(is_root || keys.len() >= MIN_FILL || keys.len() + 1 >= MIN_FILL);
                assert_eq!(keys.len(), tids.len());
                for &w in keys {
                    let k = self.source.load_key(w, scratch).to_vec();
                    if let Some(prev) = last {
                        assert!(*prev < k, "keys strictly ascending");
                    }
                    *last = Some(k);
                    *count += 1;
                }
                leaf_depths.push(depth);
            }
            Node::Inner { seps, children } => {
                assert!(children.len() <= FANOUT);
                assert!(is_root || children.len() >= MIN_FILL);
                assert_eq!(seps.len() + 1, children.len());
                for (i, c) in children.iter().enumerate() {
                    self.validate_rec(c, depth + 1, false, leaf_depths, count, last, scratch);
                    // After finishing child i, the next separator must be >
                    // every key seen so far.
                    if i < seps.len() {
                        let sep_key = self.source.load_key(seps[i], scratch).to_vec();
                        if let Some(prev) = last {
                            assert!(*prev < sep_key, "separator above left subtree");
                        }
                    }
                }
            }
        }
    }
}

/// Split `n` items into `ceil(n / FANOUT)` contiguous half-open chunks
/// whose sizes differ by at most one — every chunk holds at least
/// `MIN_FILL` items once `n >= MIN_FILL`, which is what lets the bulk
/// loader satisfy the structural fill invariant without tail rebalancing.
fn even_chunks(n: usize) -> impl Iterator<Item = (usize, usize)> {
    let groups = n.div_ceil(FANOUT);
    (0..groups).map(move |g| (g * n / groups, (g + 1) * n / groups))
}

/// Ordered iterator over leaf TIDs.
pub struct Cursor<'a> {
    frames: Vec<(&'a Node, usize)>,
}

impl<'a> Iterator for Cursor<'a> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            let &(node, idx) = self.frames.last()?;
            match node {
                Node::Leaf { tids, .. } => {
                    if idx >= tids.len() {
                        self.frames.pop();
                        continue;
                    }
                    self.frames.last_mut().expect("non-empty").1 += 1;
                    return Some(tids[idx]);
                }
                Node::Inner { children, .. } => {
                    if idx >= children.len() {
                        self.frames.pop();
                        continue;
                    }
                    self.frames.last_mut().expect("non-empty").1 += 1;
                    self.frames.push((&children[idx], 0));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_keys::{encode_u64, ArenaKeySource, EmbeddedKeySource};

    fn int_tree(keys: &[u64]) -> BPlusTree<EmbeddedKeySource> {
        let mut t = BPlusTree::new(EmbeddedKeySource);
        for &k in keys {
            t.insert(&encode_u64(k), k);
        }
        t
    }

    #[test]
    fn empty_and_single() {
        let mut t = BPlusTree::new(EmbeddedKeySource);
        assert!(t.is_empty());
        assert_eq!(t.get(&encode_u64(0)), None);
        t.insert(&encode_u64(9), 9);
        assert_eq!(t.get(&encode_u64(9)), Some(9));
        assert_eq!(t.len(), 1);
        t.validate();
    }

    #[test]
    fn fill_leaf_then_split() {
        let keys: Vec<u64> = (0..FANOUT as u64 + 1).collect();
        let t = int_tree(&keys);
        t.validate();
        assert!(t.memory_stats().node_count >= 3, "root + two leaves");
        for &k in &keys {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn ten_thousand_sorted_and_random() {
        let sorted: Vec<u64> = (0..10_000).collect();
        let t = int_tree(&sorted);
        t.validate();
        assert_eq!(t.iter().collect::<Vec<_>>(), sorted);

        let mut x = 0x243F_6A88_85A3_08D3u64;
        let random: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x >> 1
            })
            .collect();
        let t = int_tree(&random);
        t.validate();
        let mut expect = random.clone();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(t.iter().collect::<Vec<_>>(), expect);
        for &k in random.iter().step_by(111) {
            assert_eq!(t.get(&encode_u64(k)), Some(k));
        }
    }

    #[test]
    fn upsert() {
        let mut arena = ArenaKeySource::new();
        let t1 = arena.push(b"k");
        let t2 = arena.push(b"k");
        let mut t = BPlusTree::new(&arena);
        assert_eq!(t.insert(b"k", t1), None);
        assert_eq!(t.insert(b"k", t2), Some(t1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn string_keys_resolved_through_source() {
        let mut arena = ArenaKeySource::new();
        let words: Vec<Vec<u8>> = ["delta", "alpha", "echo", "charlie", "bravo"]
            .iter()
            .map(|w| hot_keys::str_key(w.as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = words.iter().map(|w| arena.push(w)).collect();
        let mut t = BPlusTree::new(&arena);
        for (w, &tid) in words.iter().zip(&tids) {
            t.insert(w, tid);
        }
        t.validate();
        for (w, &tid) in words.iter().zip(&tids) {
            assert_eq!(t.get(w), Some(tid));
        }
        // In-order = lexicographic.
        let got: Vec<Vec<u8>> = t.iter().map(|tid| arena.key(tid).to_vec()).collect();
        let mut want = words.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn scans() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let t = int_tree(&keys);
        assert_eq!(t.scan(&encode_u64(30), 5), vec![30, 33, 36, 39, 42]);
        assert_eq!(t.scan(&encode_u64(31), 3), vec![33, 36, 39]);
        assert_eq!(t.scan(&encode_u64(3000), 3), Vec::<u64>::new());
        assert_eq!(t.scan(&encode_u64(0), 2), vec![0, 3]);
    }

    #[test]
    fn removal_with_rebalancing() {
        let keys: Vec<u64> = (0..2_000).collect();
        let mut t = int_tree(&keys);
        // Remove every other key, then validate fill factors.
        for k in (0..2_000u64).step_by(2) {
            assert_eq!(t.remove(&encode_u64(k)), Some(k));
        }
        t.validate();
        assert_eq!(t.len(), 1000);
        for k in 0..2_000u64 {
            let want = if k % 2 == 1 { Some(k) } else { None };
            assert_eq!(t.get(&encode_u64(k)), want);
        }
        // Remove the rest in reverse order down to empty.
        for k in (1..2_000u64).step_by(2).collect::<Vec<_>>().into_iter().rev() {
            assert_eq!(t.remove(&encode_u64(k)), Some(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.memory_stats().node_bytes, 0);
    }

    #[test]
    fn memory_is_dataset_independent() {
        // The defining property of the paper's BT baseline: bytes/key does
        // not depend on key length, only on the number of keys.
        let n = 5_000u64;
        let ints = int_tree(&(0..n).collect::<Vec<_>>());

        let mut arena = ArenaKeySource::new();
        let keys: Vec<Vec<u8>> = (0..n)
            .map(|i| hot_keys::str_key(format!("https://example.com/some/long/url/{i:08}").as_bytes()).unwrap())
            .collect();
        let tids: Vec<u64> = keys.iter().map(|k| arena.push(k)).collect();
        let mut bt = BPlusTree::new(&arena);
        for (k, &tid) in keys.iter().zip(&tids) {
            bt.insert(k, tid);
        }
        let a = ints.memory_stats();
        let b = bt.memory_stats();
        let ratio = a.bytes_per_key() / b.bytes_per_key();
        assert!(
            (0.8..1.25).contains(&ratio),
            "int {} vs url {} bytes/key",
            a.bytes_per_key(),
            b.bytes_per_key()
        );
    }

    #[test]
    fn depth_is_uniform_and_logarithmic() {
        let t = int_tree(&(0..10_000u64).collect::<Vec<_>>());
        let d = t.depth_stats();
        assert_eq!(d.min_depth(), d.max_depth());
        // fanout 16, 10k keys -> depth 4-5 (sorted inserts halve fill).
        assert!(d.max_depth().unwrap() <= 6);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        // Sweep sizes around the fill-invariant edge cases: single leaf,
        // one over a leaf, exact multiples and awkward tails.
        for n in [1u64, 7, 16, 17, 32, 100, 255, 256, 257, 4096, 9999] {
            let keys: Vec<u64> = (0..n).map(|i| i * 31 % (n * 7)).collect();
            let incr = int_tree(&keys);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let entries: Vec<([u8; 8], u64)> =
                sorted.iter().map(|&k| (encode_u64(k), k)).collect();
            let mut bulk = BPlusTree::new(EmbeddedKeySource);
            assert_eq!(bulk.bulk_load(&entries), sorted.len(), "n={n}");
            bulk.validate();
            assert_eq!(bulk.len(), incr.len(), "n={n}");
            assert_eq!(
                bulk.iter().collect::<Vec<_>>(),
                incr.iter().collect::<Vec<_>>(),
                "n={n}"
            );
            for &k in sorted.iter().step_by(13) {
                assert_eq!(bulk.get(&encode_u64(k)), Some(k), "n={n}");
            }
            // Full leaves: never more nodes than the split-built tree.
            assert!(
                bulk.memory_stats().node_count <= incr.memory_stats().node_count,
                "n={n}"
            );
        }
    }

    #[test]
    fn bulk_load_duplicates_and_empty() {
        let mut arena = ArenaKeySource::new();
        let t1 = arena.push(b"k");
        let t2 = arena.push(b"k");
        let t3 = arena.push(b"m");
        let mut t = BPlusTree::new(&arena);
        let entries: Vec<(&[u8], u64)> = vec![(b"k", t1), (b"k", t2), (b"m", t3)];
        assert_eq!(t.bulk_load(&entries), 2, "duplicate k collapses");
        assert_eq!(t.get(b"k"), Some(t2), "last write wins");
        assert_eq!(t.get(b"m"), Some(t3));
        t.validate();

        let mut empty = BPlusTree::new(EmbeddedKeySource);
        assert_eq!(empty.bulk_load::<[u8; 8]>(&[]), 0);
        assert!(empty.is_empty());
        empty.validate();
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn bulk_load_rejects_unsorted() {
        let mut t = BPlusTree::new(EmbeddedKeySource);
        t.bulk_load(&[(encode_u64(5), 5u64), (encode_u64(1), 1u64)]);
    }
}
