//! Observability layer for the HOT index (DESIGN.md §13).
//!
//! A per-structure [`Registry`] records, with no locks on the hot path:
//!
//! * **operation counters and latency histograms** — one [`OpKind`] per
//!   public entry point (get / insert / remove / scan and their batched
//!   variants plus bulk load), each with a call counter, a summed-duration
//!   counter, an *items* counter (keys resolved per batch, TIDs returned
//!   per scan) and a fixed-bucket log-scale latency histogram
//!   (HdrHistogram-style: linear below 2^[`SUB_BITS`] ns, then
//!   2^[`SUB_BITS`] sub-buckets per power of two — relative bucket error
//!   is bounded by `2^-SUB_BITS`);
//! * **ROWEX health counters** ([`RowexCounter`]) — lock-acquisition
//!   failures, optimistic-insert/remove restarts, obsolete-marker
//!   encounters, epoch pins and the deferred-free queue (queued vs.
//!   executed; the difference is the reclamation backlog).
//! * **MLP scheduler health** ([`SchedCounter`] plus the lane-occupancy
//!   histogram) — refills, completions by descent kind, restart-triggered
//!   re-descents, and one occupancy sample per scheduler round so the
//!   achieved in-flight depth of the out-of-order batch pipeline is
//!   observable (DESIGN.md §14).
//!
//! Recording goes to one of [`NUM_SHARDS`] cache-line-padded shards picked
//! by a per-thread slot, so concurrent writers on different threads do not
//! ping-pong a shared counter line; [`Registry::ops_snapshot`] merges the
//! shards into an immutable [`MetricsSnapshot`] that offers percentile
//! extraction ([`OpSnapshot::quantile_ns`]) and stable, hand-rolled JSON
//! (the workspace has no serde).
//!
//! The crate is only ever compiled when an index crate enables its
//! `metrics` cargo feature; the default build has **zero** cost because no
//! call site survives (verified by `cargo xtask verify-no-metrics`).

#![deny(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Public operation kinds instrumented on the index entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    /// Point lookup (`get` / `get_with`).
    Get = 0,
    /// Upsert (`insert`).
    Insert = 1,
    /// Deletion (`remove`).
    Remove = 2,
    /// Range scan (`scan` / `scan_with` / `scan_into`).
    Scan = 3,
    /// Batched point lookups (`get_batch` / `get_batch_with`).
    GetBatch = 4,
    /// Batched range scans (`scan_batch` / `scan_batch_with`).
    ScanBatch = 5,
    /// Sorted bulk load (`bulk_load` / `bulk_load_parallel`).
    BulkLoad = 6,
    /// Batched removals (`remove_batch`: probe descents + applies).
    RemoveBatch = 7,
    /// Served GET request (hot-server execution, hot-client round trip).
    NetGet = 8,
    /// Served PUT request.
    NetPut = 9,
    /// Served DEL request.
    NetDel = 10,
    /// Served SCAN / SCAN-resume request.
    NetScan = 11,
    /// Any served network request — the aggregate the wire drivers use
    /// for whole-stream latency percentiles (each request is recorded
    /// under its kind *and* here).
    NetOp = 12,
}

impl OpKind {
    /// Every instrumented operation kind, in `repr` order.
    pub const ALL: [OpKind; NUM_OPS] = [
        OpKind::Get,
        OpKind::Insert,
        OpKind::Remove,
        OpKind::Scan,
        OpKind::GetBatch,
        OpKind::ScanBatch,
        OpKind::BulkLoad,
        OpKind::RemoveBatch,
        OpKind::NetGet,
        OpKind::NetPut,
        OpKind::NetDel,
        OpKind::NetScan,
        OpKind::NetOp,
    ];

    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
            OpKind::Scan => "scan",
            OpKind::GetBatch => "get_batch",
            OpKind::ScanBatch => "scan_batch",
            OpKind::BulkLoad => "bulk_load",
            OpKind::RemoveBatch => "remove_batch",
            OpKind::NetGet => "net_get",
            OpKind::NetPut => "net_put",
            OpKind::NetDel => "net_del",
            OpKind::NetScan => "net_scan",
            OpKind::NetOp => "net_op",
        }
    }
}

/// Number of instrumented operation kinds.
pub const NUM_OPS: usize = 13;

/// ROWEX synchronization health counters (see `hot_core::sync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum RowexCounter {
    /// A writer failed to acquire a node's write lock (contention).
    LockFail = 0,
    /// An optimistic insert/remove attempt restarted (failed lock, failed
    /// re-validation, or a torn-slot read).
    Restart = 1,
    /// A locked node turned out to be marked OBSOLETE during validation.
    ObsoleteSeen = 2,
    /// An epoch was pinned (one per public reader/writer entry).
    EpochPin = 3,
    /// A replaced node was handed to the deferred-free queue.
    DeferredQueued = 4,
    /// A deferred free actually executed (epoch advanced past all readers).
    DeferredFreed = 5,
}

impl RowexCounter {
    /// Every ROWEX counter, in `repr` order.
    pub const ALL: [RowexCounter; NUM_ROWEX] = [
        RowexCounter::LockFail,
        RowexCounter::Restart,
        RowexCounter::ObsoleteSeen,
        RowexCounter::EpochPin,
        RowexCounter::DeferredQueued,
        RowexCounter::DeferredFreed,
    ];

    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            RowexCounter::LockFail => "lock_failures",
            RowexCounter::Restart => "restarts",
            RowexCounter::ObsoleteSeen => "obsolete_seen",
            RowexCounter::EpochPin => "epoch_pins",
            RowexCounter::DeferredQueued => "deferred_queued",
            RowexCounter::DeferredFreed => "deferred_freed",
        }
    }
}

/// Number of ROWEX health counters.
pub const NUM_ROWEX: usize = 6;

/// Out-of-order MLP scheduler health counters (see `hot_core::mlp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SchedCounter {
    /// A lane was loaded with a request from the pending queue (initial
    /// fills count too, so `refills == requests` for a drained batch).
    Refill = 0,
    /// A lookup descent completed (hit or miss).
    LookupDone = 1,
    /// A scan-seek descent completed (its drain ran).
    ScanSeekDone = 2,
    /// A remove-probe descent completed.
    ProbeDone = 3,
    /// A lane re-descended from a freshly reloaded root after observing a
    /// torn (null) slot mid-descent on the concurrent index.
    Redescent = 4,
}

impl SchedCounter {
    /// Every scheduler counter, in `repr` order.
    pub const ALL: [SchedCounter; NUM_SCHED] = [
        SchedCounter::Refill,
        SchedCounter::LookupDone,
        SchedCounter::ScanSeekDone,
        SchedCounter::ProbeDone,
        SchedCounter::Redescent,
    ];

    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            SchedCounter::Refill => "refills",
            SchedCounter::LookupDone => "lookup_completions",
            SchedCounter::ScanSeekDone => "scan_seek_completions",
            SchedCounter::ProbeDone => "probe_completions",
            SchedCounter::Redescent => "redescents",
        }
    }
}

/// Number of MLP scheduler health counters.
pub const NUM_SCHED: usize = 5;

/// Largest lane-occupancy value tracked exactly; the occupancy histogram
/// has one bucket per occupancy `0..=MAX_OCCUPANCY` (deeper schedulers
/// clamp into the last bucket).
pub const MAX_OCCUPANCY: usize = 64;

/// Buckets in the lane-occupancy histogram.
pub const OCC_BUCKETS: usize = MAX_OCCUPANCY + 1;

/// Sub-bucket resolution: 2^SUB_BITS log-spaced sub-buckets per power of
/// two, i.e. ≤ 1/16 ≈ 6% relative quantile error.
pub const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Largest exponent tracked: values at or above 2^MAX_EXP ns (~18 minutes)
/// land in the final bucket.
const MAX_EXP: u32 = 40;
/// Total latency-histogram buckets per operation kind.
pub const NUM_BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS) as usize * SUB;

/// Histogram bucket index for a duration of `ns` nanoseconds.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    if msb >= MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    // ns ∈ [2^msb, 2^(msb+1)); its top SUB_BITS+1 bits select the run and
    // the sub-bucket within it.
    let sub = (ns >> (msb - SUB_BITS)) as usize - SUB;
    SUB + (msb - SUB_BITS) as usize * SUB + sub
}

/// Inclusive lower bound (in ns) of histogram bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let run = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    ((SUB + sub) as u64) << run
}

/// Width (in ns) of histogram bucket `i` (1 in the linear range).
#[inline]
pub fn bucket_width(i: usize) -> u64 {
    if i < SUB {
        1
    } else {
        1u64 << ((i - SUB) / SUB)
    }
}

/// Per-operation shard state. All fields are written with `Relaxed`
/// read-modify-writes: metrics never synchronize access to index memory,
/// they only have to be individually exact.
struct OpShard {
    count: AtomicU64,
    total_ns: AtomicU64,
    items: AtomicU64,
    hist: [AtomicU64; NUM_BUCKETS],
}

impl OpShard {
    fn new() -> OpShard {
        OpShard {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            items: AtomicU64::new(0),
            hist: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }
}

/// One recording shard: a full set of op stats plus the ROWEX counters,
/// padded so two shards never share a cache line.
#[repr(align(128))]
struct Shard {
    ops: [OpShard; NUM_OPS],
    rowex: [AtomicU64; NUM_ROWEX],
    sched: [AtomicU64; NUM_SCHED],
    occupancy: [AtomicU64; OCC_BUCKETS],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            ops: std::array::from_fn(|_| OpShard::new()),
            rowex: [const { AtomicU64::new(0) }; NUM_ROWEX],
            sched: [const { AtomicU64::new(0) }; NUM_SCHED],
            occupancy: [const { AtomicU64::new(0) }; OCC_BUCKETS],
        }
    }
}

/// Number of recording shards per registry. Threads map onto shards by a
/// process-wide thread slot modulo this; more simultaneous threads than
/// shards merely share (correctly, via atomic adds), they never lose
/// updates.
pub const NUM_SHARDS: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard slot, assigned on first use.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn shard_index() -> usize {
    THREAD_SLOT.with(|s| *s) % NUM_SHARDS
}

/// Sharded metrics recorder owned by one index structure.
///
/// All recording methods take `&self` and are thread-safe; snapshots merge
/// the shards. Dropping the index drops its metrics — there is no global
/// state, so tests and benchmarks observe exactly the operations of the
/// structure they hold.
pub struct Registry {
    shards: Box<[Shard; NUM_SHARDS]>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh all-zero registry.
    pub fn new() -> Registry {
        // Build on the heap: a shard is dominated by its latency
        // histograms, so the full array is far too large to stage on the
        // stack of a caller's thread.
        let shards: Vec<Shard> = (0..NUM_SHARDS).map(|_| Shard::new()).collect();
        let shards: Box<[Shard; NUM_SHARDS]> = shards
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly NUM_SHARDS shards"));
        Registry { shards }
    }

    /// Record one completed `op` that took `ns` nanoseconds.
    #[inline]
    pub fn record_ns(&self, op: OpKind, ns: u64) {
        let shard = &self.shards[shard_index()].ops[op as usize];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.total_ns.fetch_add(ns, Ordering::Relaxed);
        shard.hist[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to `op`'s items counter (keys per batch, TIDs per scan).
    #[inline]
    pub fn add_items(&self, op: OpKind, n: u64) {
        self.shards[shard_index()].ops[op as usize]
            .items
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Start timing one `op`; the returned guard records on drop.
    #[inline]
    pub fn timer(&self, op: OpKind) -> OpTimer<'_> {
        OpTimer {
            registry: self,
            op,
            start: Instant::now(),
        }
    }

    /// Increment a ROWEX health counter.
    #[inline]
    pub fn incr(&self, c: RowexCounter) {
        self.shards[shard_index()].rowex[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Merged value of one ROWEX counter.
    pub fn counter(&self, c: RowexCounter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.rowex[c as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Increment an MLP scheduler health counter.
    #[inline]
    pub fn incr_sched(&self, c: SchedCounter) {
        self.shards[shard_index()].sched[c as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one lane-occupancy sample (busy lanes observed at the top of
    /// a scheduler round; clamped to [`MAX_OCCUPANCY`]).
    #[inline]
    pub fn record_occupancy(&self, busy: usize) {
        self.shards[shard_index()].occupancy[busy.min(MAX_OCCUPANCY)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Merged value of one scheduler counter.
    pub fn sched_counter(&self, c: SchedCounter) -> u64 {
        self.shards
            .iter()
            .map(|s| s.sched[c as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Merge every shard into an immutable snapshot of the operation and
    /// ROWEX metrics (no structural gauges — the owning index attaches
    /// those, see `HotTrie::metrics_snapshot`).
    pub fn ops_snapshot(&self) -> MetricsSnapshot {
        let ops = OpKind::ALL
            .iter()
            .map(|&kind| {
                let mut snap = OpSnapshot {
                    kind,
                    count: 0,
                    total_ns: 0,
                    items: 0,
                    hist: vec![0; NUM_BUCKETS],
                };
                for shard in self.shards.iter() {
                    let s = &shard.ops[kind as usize];
                    snap.count += s.count.load(Ordering::Relaxed);
                    snap.total_ns += s.total_ns.load(Ordering::Relaxed);
                    snap.items += s.items.load(Ordering::Relaxed);
                    for (acc, b) in snap.hist.iter_mut().zip(s.hist.iter()) {
                        *acc += b.load(Ordering::Relaxed);
                    }
                }
                snap
            })
            .collect();
        let mut rowex = RowexSnapshot::default();
        for c in RowexCounter::ALL {
            rowex.counts[c as usize] = self.counter(c);
        }
        let mut sched = SchedSnapshot::default();
        for c in SchedCounter::ALL {
            sched.counts[c as usize] = self.sched_counter(c);
        }
        for (i, bucket) in sched.occupancy.iter_mut().enumerate() {
            *bucket = self
                .shards
                .iter()
                .map(|s| s.occupancy[i].load(Ordering::Relaxed))
                .sum();
        }
        MetricsSnapshot {
            ops,
            rowex,
            sched,
            structure: None,
        }
    }
}

/// Drop guard that records one operation's latency into its registry.
pub struct OpTimer<'a> {
    registry: &'a Registry,
    op: OpKind,
    start: Instant,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.registry.record_ns(self.op, ns);
    }
}

/// Owning flavour of [`OpTimer`]: holds the registry by `Arc`, so it can
/// be bound across calls that mutably borrow the instrumented structure
/// (`insert`, `remove`, `bulk_load`).
pub struct SharedOpTimer {
    registry: std::sync::Arc<Registry>,
    op: OpKind,
    start: Instant,
}

impl SharedOpTimer {
    /// Start timing one `op` against a shared registry; records on drop.
    #[inline]
    pub fn new(registry: std::sync::Arc<Registry>, op: OpKind) -> SharedOpTimer {
        SharedOpTimer {
            registry,
            op,
            start: Instant::now(),
        }
    }
}

impl Drop for SharedOpTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.registry.record_ns(self.op, ns);
    }
}

/// Merged statistics for one operation kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Which operation this summarizes.
    pub kind: OpKind,
    /// Completed calls.
    pub count: u64,
    /// Summed wall-clock duration in nanoseconds.
    pub total_ns: u64,
    /// Summed item count (keys per batch call, TIDs per scan, keys per
    /// bulk load; 0 for point ops).
    pub items: u64,
    /// Latency histogram, `NUM_BUCKETS` log-scale buckets.
    pub hist: Vec<u64>,
}

impl OpSnapshot {
    /// Total samples in the histogram (must equal [`OpSnapshot::count`] —
    /// the metrics differential test asserts exactly this).
    pub fn hist_total(&self) -> u64 {
        self.hist.iter().sum()
    }

    /// Mean latency in nanoseconds (0 when no calls were recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Latency quantile in nanoseconds: the midpoint of the bucket holding
    /// the `q`-quantile sample (`q` in `[0, 1]`; 0 when empty). Relative
    /// error is bounded by the bucket width, ≤ 2^-[`SUB_BITS`].
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.hist_total();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i) + bucket_width(i) / 2;
            }
        }
        bucket_lower(NUM_BUCKETS - 1)
    }

    /// Median latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency (ns).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// This snapshot minus an earlier one of the same kind (saturating, so
    /// mismatched snapshots degrade to zeros rather than panicking).
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            kind: self.kind,
            count: self.count.saturating_sub(earlier.count),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            items: self.items.saturating_sub(earlier.items),
            hist: self
                .hist
                .iter()
                .zip(earlier.hist.iter())
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
        }
    }
}

/// Merged ROWEX health counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowexSnapshot {
    /// Counter values indexed by `RowexCounter as usize`.
    pub counts: [u64; NUM_ROWEX],
}

impl RowexSnapshot {
    /// Value of one counter.
    pub fn get(&self, c: RowexCounter) -> u64 {
        self.counts[c as usize]
    }

    /// Deferred frees still queued (reclamation backlog): queued − freed.
    pub fn deferred_depth(&self) -> u64 {
        self.get(RowexCounter::DeferredQueued)
            .saturating_sub(self.get(RowexCounter::DeferredFreed))
    }

    /// Restarts per completed write attempt-carrying op: `restarts /
    /// max(writes, 1)` — the contention signal fig10 reports.
    pub fn restart_rate(&self, writes: u64) -> f64 {
        self.get(RowexCounter::Restart) as f64 / writes.max(1) as f64
    }

    /// This snapshot minus an earlier one (saturating).
    pub fn since(&self, earlier: &RowexSnapshot) -> RowexSnapshot {
        let mut out = RowexSnapshot::default();
        for i in 0..NUM_ROWEX {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// Merged MLP scheduler health counters plus the lane-occupancy histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedSnapshot {
    /// Counter values indexed by `SchedCounter as usize`.
    pub counts: [u64; NUM_SCHED],
    /// Occupancy samples per busy-lane count (`occupancy[b]` = rounds that
    /// started with exactly `b` lanes in flight, `b` clamped to
    /// [`MAX_OCCUPANCY`]).
    pub occupancy: [u64; OCC_BUCKETS],
}

impl Default for SchedSnapshot {
    fn default() -> Self {
        SchedSnapshot {
            counts: [0; NUM_SCHED],
            occupancy: [0; OCC_BUCKETS],
        }
    }
}

impl SchedSnapshot {
    /// Value of one counter.
    pub fn get(&self, c: SchedCounter) -> u64 {
        self.counts[c as usize]
    }

    /// Completed descents across all kinds — for a drained batch pipeline
    /// this must equal both the submitted requests and the refills (the
    /// metrics differential test asserts exactly that).
    pub fn completions(&self) -> u64 {
        self.get(SchedCounter::LookupDone)
            + self.get(SchedCounter::ScanSeekDone)
            + self.get(SchedCounter::ProbeDone)
    }

    /// Total occupancy samples (scheduler rounds observed).
    pub fn occupancy_samples(&self) -> u64 {
        self.occupancy.iter().sum()
    }

    /// Mean busy lanes per round (0 when no samples) — compare against the
    /// configured depth to see whether the pipeline stayed full.
    pub fn mean_occupancy(&self) -> f64 {
        let samples = self.occupancy_samples();
        if samples == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .occupancy
            .iter()
            .enumerate()
            .map(|(b, &n)| b as u64 * n)
            .sum();
        weighted as f64 / samples as f64
    }

    /// This snapshot minus an earlier one (saturating).
    pub fn since(&self, earlier: &SchedSnapshot) -> SchedSnapshot {
        let mut out = SchedSnapshot::default();
        for i in 0..NUM_SCHED {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        for i in 0..OCC_BUCKETS {
            out.occupancy[i] = self.occupancy[i].saturating_sub(earlier.occupancy[i]);
        }
        out
    }
}

/// Structural gauges sampled from a whole-trie invariant walk (see
/// `hot_core::invariants`): the paper's two adaptivity dimensions made
/// observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralSnapshot {
    /// Compound nodes.
    pub nodes: u64,
    /// Stored keys (leaves).
    pub leaves: u64,
    /// Root height.
    pub height: u64,
    /// Total entry slots across all nodes; `entries / nodes / 32` is the
    /// fill factor.
    pub entries: u64,
    /// Live nodes per physical layout, indexed by `NodeTag as usize`
    /// (Single8 … Multi32x32).
    pub layout_census: [u64; 9],
    /// Leaf count per depth (root-to-leaf compound nodes), clamped to the
    /// final slot.
    pub leaf_depths: Vec<u64>,
}

impl StructuralSnapshot {
    /// Average node fill in entries out of the fanout bound `k = 32`.
    pub fn avg_fill(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.entries as f64 / self.nodes as f64
        }
    }
}

/// A complete, immutable metrics snapshot: merged operation stats, ROWEX
/// health counters and (when sampled) structural gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Per-operation stats, one entry per [`OpKind::ALL`] member.
    pub ops: Vec<OpSnapshot>,
    /// ROWEX counters (all zero on single-threaded structures).
    pub rowex: RowexSnapshot,
    /// MLP scheduler health (all zero until a batched entry point runs
    /// through the out-of-order scheduler).
    pub sched: SchedSnapshot,
    /// Structural gauges, when the snapshot sampled the tree.
    pub structure: Option<StructuralSnapshot>,
}

impl MetricsSnapshot {
    /// Stats for one operation kind.
    pub fn op(&self, kind: OpKind) -> &OpSnapshot {
        &self.ops[kind as usize]
    }

    /// Total completed write-path calls (insert + remove + bulk load) —
    /// the denominator of [`RowexSnapshot::restart_rate`].
    pub fn write_ops(&self) -> u64 {
        self.op(OpKind::Insert).count
            + self.op(OpKind::Remove).count
            + self.op(OpKind::BulkLoad).count
    }

    /// Operation and ROWEX deltas since an `earlier` snapshot of the same
    /// registry (structural gauges are point-in-time and carried from
    /// `self`). This is what per-phase tagging diffs.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            ops: self
                .ops
                .iter()
                .zip(earlier.ops.iter())
                .map(|(a, b)| a.since(b))
                .collect(),
            rowex: self.rowex.since(&earlier.rowex),
            sched: self.sched.since(&earlier.sched),
            structure: self.structure.clone(),
        }
    }

    /// Fold `other` into `self`, summing every counter, duration and
    /// histogram bucket per operation kind plus the ROWEX and scheduler
    /// counters — the per-shard aggregation of the sharded execution
    /// layer (each shard trie owns an independent registry; the sharded
    /// snapshot is their sum). Structural gauges are per-tree and do not
    /// sum meaningfully, so the merge keeps `self`'s.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.ops.iter_mut().zip(other.ops.iter()) {
            a.count += b.count;
            a.total_ns += b.total_ns;
            a.items += b.items;
            for (ha, hb) in a.hist.iter_mut().zip(b.hist.iter()) {
                *ha += hb;
            }
        }
        for i in 0..NUM_ROWEX {
            self.rowex.counts[i] += other.rowex.counts[i];
        }
        for i in 0..NUM_SCHED {
            self.sched.counts[i] += other.sched.counts[i];
        }
        for i in 0..OCC_BUCKETS {
            self.sched.occupancy[i] += other.sched.occupancy[i];
        }
    }

    /// [`merge`](Self::merge) by value, for fold chains.
    pub fn merged(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
        self.merge(other);
        self
    }

    /// Serialize to stable, human-diffable JSON (ops with non-zero counts
    /// only; histograms summarized as percentiles, not dumped raw).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"ops\": {\n");
        let live: Vec<&OpSnapshot> = self.ops.iter().filter(|o| o.count > 0).collect();
        for (i, o) in live.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"items\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
                o.kind.label(),
                o.count,
                o.items,
                o.mean_ns(),
                o.p50_ns(),
                o.p99_ns(),
                o.p999_ns(),
                if i + 1 < live.len() { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"rowex\": {");
        for (i, c) in RowexCounter::ALL.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": {}{}",
                c.label(),
                self.rowex.get(*c),
                if i + 1 < NUM_ROWEX { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            ", \"deferred_depth\": {}}}",
            self.rowex.deferred_depth()
        ));
        if self.sched.get(SchedCounter::Refill) > 0 {
            out.push_str(",\n  \"sched\": {");
            for c in SchedCounter::ALL.iter() {
                out.push_str(&format!("\"{}\": {}, ", c.label(), self.sched.get(*c)));
            }
            out.push_str(&format!(
                "\"occupancy_samples\": {}, \"mean_occupancy\": {:.2}}}",
                self.sched.occupancy_samples(),
                self.sched.mean_occupancy()
            ));
        }
        if let Some(s) = &self.structure {
            out.push_str(&format!(
                ",\n  \"structure\": {{\"nodes\": {}, \"leaves\": {}, \"height\": {}, \
                 \"avg_fill\": {:.2}, \"layout_census\": {:?}, \"leaf_depths\": {:?}}}",
                s.nodes, s.leaves, s.height, s.avg_fill(), s.layout_census, s.leaf_depths
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Routed-request balance across the shards of a sharded index: the
/// router's per-shard request tallies plus the derived imbalance gauge
/// fig10 reports for `--shards` rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardBalance {
    /// Requests routed to each shard since construction.
    pub routed: Vec<u64>,
}

impl ShardBalance {
    /// Wrap per-shard routed-request counts.
    pub fn new(routed: Vec<u64>) -> ShardBalance {
        ShardBalance { routed }
    }

    /// Total routed requests.
    pub fn total(&self) -> u64 {
        self.routed.iter().sum()
    }

    /// Hottest shard over mean: 1.0 is perfectly balanced, `shards` is
    /// everything on one shard; an empty or idle gauge reports 1.0.
    pub fn imbalance(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.routed.is_empty() {
            return 1.0;
        }
        let max = self.routed.iter().copied().max().unwrap_or(0) as f64;
        max * self.routed.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_balance_imbalance_gauge() {
        assert_eq!(ShardBalance::default().imbalance(), 1.0);
        assert_eq!(ShardBalance::new(vec![0, 0]).imbalance(), 1.0);
        assert_eq!(ShardBalance::new(vec![5, 5, 5, 5]).imbalance(), 1.0);
        // All load on one of four shards: max/mean = 4.
        assert_eq!(ShardBalance::new(vec![12, 0, 0, 0]).imbalance(), 4.0);
        // 3:1 across two shards: max/mean = 1.5.
        assert_eq!(ShardBalance::new(vec![9, 3]).imbalance(), 1.5);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        {
            let _t = reg_a.timer(OpKind::Get);
        }
        {
            let _t = reg_b.timer(OpKind::Get);
        }
        {
            let _t = reg_b.timer(OpKind::Insert);
        }
        reg_a.incr(RowexCounter::Restart);
        reg_b.incr(RowexCounter::Restart);
        reg_b.incr(RowexCounter::EpochPin);
        let mut merged = reg_a.ops_snapshot();
        merged.merge(&reg_b.ops_snapshot());
        assert_eq!(merged.op(OpKind::Get).count, 2);
        assert_eq!(merged.op(OpKind::Get).hist_total(), 2);
        assert_eq!(merged.op(OpKind::Insert).count, 1);
        assert_eq!(merged.rowex.get(RowexCounter::Restart), 2);
        assert_eq!(merged.rowex.get(RowexCounter::EpochPin), 1);
        // Merge is value-preserving over totals: merged totals equal the
        // sum of the parts for every op kind.
        let (a, b) = (reg_a.ops_snapshot(), reg_b.ops_snapshot());
        for kind in OpKind::ALL {
            assert_eq!(
                merged.op(kind).total_ns,
                a.op(kind).total_ns + b.op(kind).total_ns
            );
        }
    }

    #[test]
    fn bucket_index_roundtrips_bounds() {
        // Every bucket's lower bound must map back to that bucket, and
        // bucket bounds must be monotonically increasing.
        let mut prev = 0;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo + bucket_width(i) - 1), i, "upper edge of bucket {i}");
            if i > 0 {
                assert!(lo > prev || i == 1, "bounds increase at {i}");
            }
            prev = lo;
        }
        // Overflow clamps to the last bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_match_exact_for_linear_values() {
        let reg = Registry::new();
        for ns in 0..16u64 {
            // 0..16 land in the exact linear buckets.
            reg.record_ns(OpKind::Get, ns);
        }
        let snap = reg.ops_snapshot();
        let get = snap.op(OpKind::Get);
        assert_eq!(get.count, 16);
        assert_eq!(get.hist_total(), 16);
        assert_eq!(get.p50_ns(), 7);
        assert_eq!(get.quantile_ns(1.0), 15);
        assert_eq!(get.quantile_ns(0.0), 0);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let reg = Registry::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| i * i + 17).collect();
        for &v in &values {
            reg.record_ns(OpKind::Insert, v);
        }
        values.sort_unstable();
        let snap = reg.ops_snapshot();
        let ins = snap.op(OpKind::Insert);
        for &(q, rank) in &[(0.5, 5000usize), (0.99, 9900), (0.999, 9990)] {
            let exact = values[rank - 1] as f64;
            let approx = ins.quantile_ns(q) as f64;
            let err = (approx - exact).abs() / exact;
            assert!(err < 0.07, "q={q}: exact {exact} vs approx {approx} (err {err})");
        }
    }

    #[test]
    fn shards_merge_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        reg.record_ns(OpKind::Get, i);
                        reg.add_items(OpKind::Get, 2);
                        reg.incr(RowexCounter::EpochPin);
                    }
                });
            }
        });
        let snap = reg.ops_snapshot();
        assert_eq!(snap.op(OpKind::Get).count, 4000);
        assert_eq!(snap.op(OpKind::Get).hist_total(), 4000);
        assert_eq!(snap.op(OpKind::Get).items, 8000);
        assert_eq!(snap.rowex.get(RowexCounter::EpochPin), 4000);
    }

    #[test]
    fn since_diffs_phases() {
        let reg = Registry::new();
        reg.record_ns(OpKind::Insert, 100);
        let load = reg.ops_snapshot();
        for _ in 0..10 {
            reg.record_ns(OpKind::Get, 50);
        }
        let run = reg.ops_snapshot().since(&load);
        assert_eq!(run.op(OpKind::Insert).count, 0);
        assert_eq!(run.op(OpKind::Get).count, 10);
        assert_eq!(run.op(OpKind::Get).hist_total(), 10);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let reg = Registry::new();
        reg.record_ns(OpKind::Get, 1234);
        let mut snap = reg.ops_snapshot();
        snap.structure = Some(StructuralSnapshot {
            nodes: 3,
            leaves: 40,
            height: 2,
            entries: 42,
            layout_census: [1, 0, 0, 2, 0, 0, 0, 0, 0],
            leaf_depths: vec![0, 8, 32],
        });
        let json = snap.to_json();
        assert!(json.contains("\"get\""));
        assert!(json.contains("\"rowex\""));
        assert!(json.contains("\"layout_census\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
