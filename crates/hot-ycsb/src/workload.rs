//! The six YCSB core workloads (Section 6.1).
//!
//! Each benchmark configuration has a **load phase** (insert all keys in
//! random order) and a **transaction phase** executing the workload's
//! operation mix over the loaded keys:
//!
//! | workload | mix |
//! |---|---|
//! | A | 50% read, 50% update |
//! | B | 95% read, 5% update |
//! | C | 100% read |
//! | D | 95% read (latest distribution), 5% insert |
//! | E | 95% range scan (up to 100 entries), 5% insert |
//! | F | 50% read, 50% read-modify-write |
//!
//! Request keys are drawn uniformly or Zipf-distributed ("Each benchmark
//! configuration is created in two variants"). Inserts during D and E
//! consume reserve keys generated alongside the load set, so the operation
//! stream is identical for every index structure.

use crate::zipf::{Latest, Zipfian};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The six core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50% read, 50% update.
    A,
    /// 95% read, 5% update.
    B,
    /// Read-only.
    C,
    /// 95% latest-read, 5% insert.
    D,
    /// 95% short range scan, 5% insert.
    E,
    /// 50% read, 50% read-modify-write.
    F,
}

impl Workload {
    /// All six, in paper order.
    pub const ALL: [Workload; 6] = [
        Workload::A,
        Workload::B,
        Workload::C,
        Workload::D,
        Workload::E,
        Workload::F,
    ];

    /// Figure label, e.g. `"A (50% lookup, 50% update)"`.
    pub fn label(self) -> &'static str {
        match self {
            Workload::A => "A (50% lookup, 50% update)",
            Workload::B => "B (95% lookup, 5% update)",
            Workload::C => "C (100% lookup)",
            Workload::D => "D (95% latest-read, 5% insert)",
            Workload::E => "E (95% scan, 5% insert)",
            Workload::F => "F (50% lookup, 50% read-mod-write)",
        }
    }

    /// Fraction of operations that insert new keys.
    pub fn insert_fraction(self) -> f64 {
        match self {
            Workload::D | Workload::E => 0.05,
            _ => 0.0,
        }
    }

    /// The bare letter, e.g. `"A"` (the [`label`](Self::label) is the
    /// long figure caption).
    pub fn letter(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::E => "E",
            Workload::F => "F",
        }
    }
}

impl std::str::FromStr for Workload {
    type Err = String;

    /// Parse a workload letter (`"A"`..`"F"`, case-insensitive) — the
    /// CLI convention of the network YCSB driver's `--workloads` list.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::ALL
            .into_iter()
            .find(|w| w.letter().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown workload {s:?} (expected A-F)"))
    }
}

/// How request keys are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestDistribution {
    /// Uniform over the loaded keys.
    Uniform,
    /// Scrambled Zipfian (θ = 0.99).
    Zipfian,
}

impl RequestDistribution {
    /// Both variants, in paper order.
    pub const ALL: [RequestDistribution; 2] =
        [RequestDistribution::Uniform, RequestDistribution::Zipfian];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            RequestDistribution::Uniform => "uniform",
            RequestDistribution::Zipfian => "zipf",
        }
    }
}

/// One benchmark operation. Key indices refer to the run's key universe
/// (load keys first, then the insert reserve in order of consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Point lookup of key `idx`.
    Read(usize),
    /// Value update for key `idx` (upsert of a fresh TID in the paper's
    /// setup).
    Update(usize),
    /// Insert of reserve key `idx`.
    Insert(usize),
    /// Range scan starting at key `idx`, fetching up to `len` entries.
    Scan(usize, usize),
    /// Read-modify-write of key `idx`.
    ReadModifyWrite(usize),
}

/// Maximum scan length of workload E ("range scans accessing up to 100
/// elements").
pub const MAX_SCAN_LEN: usize = 100;

/// A fully materialized benchmark configuration: the operation stream of
/// the transaction phase.
pub struct WorkloadRun {
    workload: Workload,
    distribution: RequestDistribution,
    loaded: usize,
    ops: usize,
    seed: u64,
}

impl WorkloadRun {
    /// Configure a transaction phase over `loaded` keys executing `ops`
    /// operations.
    pub fn new(
        workload: Workload,
        distribution: RequestDistribution,
        loaded: usize,
        ops: usize,
        seed: u64,
    ) -> WorkloadRun {
        WorkloadRun {
            workload,
            distribution,
            loaded,
            ops,
            seed,
        }
    }

    /// Number of reserve (insert) keys the run consumes at most; generate
    /// the dataset with `loaded + reserve` keys.
    pub fn reserve_keys(&self) -> usize {
        if self.workload.insert_fraction() > 0.0 {
            // 5% expected, leave slack for randomness.
            self.ops / 16 + self.ops / 100 + 64
        } else {
            0
        }
    }

    /// The operation stream (deterministic for the configuration).
    pub fn operations(&self) -> OperationStream {
        let rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_0055u64);
        OperationStream {
            workload: self.workload,
            distribution: self.distribution,
            zipf: match self.distribution {
                RequestDistribution::Zipfian => {
                    Some(Zipfian::with_default_theta(self.loaded as u64))
                }
                RequestDistribution::Uniform => None,
            },
            latest: matches!(self.workload, Workload::D)
                .then(|| Latest::new(self.loaded as u64)),
            rng,
            loaded: self.loaded,
            next_insert: self.loaded,
            remaining: self.ops,
        }
    }
}

/// Iterator over the transaction-phase operations.
pub struct OperationStream {
    workload: Workload,
    distribution: RequestDistribution,
    zipf: Option<Zipfian>,
    latest: Option<Latest>,
    rng: StdRng,
    loaded: usize,
    next_insert: usize,
    remaining: usize,
}

impl OperationStream {
    /// Pick a request key among the currently existing keys.
    fn pick_key(&mut self) -> usize {
        if let Some(latest) = &self.latest {
            return latest.next(&mut self.rng, self.next_insert as u64) as usize;
        }
        match self.distribution {
            RequestDistribution::Uniform => self.rng.gen_range(0..self.next_insert),
            RequestDistribution::Zipfian => {
                let z = self.zipf.as_ref().expect("zipfian configured");
                z.next_scrambled(&mut self.rng) as usize
            }
        }
    }
}

impl Iterator for OperationStream {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let roll: f64 = self.rng.gen();
        let op = match self.workload {
            Workload::A => {
                let key = self.pick_key();
                if roll < 0.5 {
                    Operation::Read(key)
                } else {
                    Operation::Update(key)
                }
            }
            Workload::B => {
                let key = self.pick_key();
                if roll < 0.95 {
                    Operation::Read(key)
                } else {
                    Operation::Update(key)
                }
            }
            Workload::C => Operation::Read(self.pick_key()),
            Workload::D => {
                if roll < 0.95 {
                    Operation::Read(self.pick_key())
                } else {
                    let idx = self.next_insert;
                    self.next_insert += 1;
                    Operation::Insert(idx)
                }
            }
            Workload::E => {
                if roll < 0.95 {
                    let len = self.rng.gen_range(1..=MAX_SCAN_LEN);
                    Operation::Scan(self.pick_key(), len)
                } else {
                    let idx = self.next_insert;
                    self.next_insert += 1;
                    Operation::Insert(idx)
                }
            }
            Workload::F => {
                let key = self.pick_key();
                if roll < 0.5 {
                    Operation::Read(key)
                } else {
                    Operation::ReadModifyWrite(key)
                }
            }
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }

    // `loaded` documents the initial key count; keep it reachable for
    // introspection in tests.
}

impl OperationStream {
    /// Number of keys loaded before the transaction phase.
    pub fn loaded(&self) -> usize {
        self.loaded
    }
}

/// An operation-stream item after read/scan coalescing: runs of consecutive
/// point reads are grouped so the index can resolve them with one
/// memory-level-parallel `get_batch` call, runs of consecutive range scans
/// are grouped for one `scan_batch` call, and everything else passes through
/// unchanged and in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchedOperation {
    /// `1..=max_batch` consecutive point reads (key indices in stream
    /// order, duplicates allowed).
    Reads(Vec<usize>),
    /// `1..=max_batch` consecutive range scans `(start key index, limit)`
    /// in stream order — the workload E fast path.
    Scans(Vec<(usize, usize)>),
    /// Any other operation, at its original position in the stream.
    Other(Operation),
}

/// Iterator adapter coalescing consecutive [`Operation::Read`]s and
/// consecutive [`Operation::Scan`]s.
///
/// Because operations are *not* reordered (a batch ends at the first
/// operation of a different kind), executing a batched stream is
/// observationally identical to executing the scalar stream — required for
/// the checksums in the benchmark driver to match between the two paths.
pub struct ReadBatches {
    inner: OperationStream,
    /// An operation of another kind pulled while closing the previous batch.
    pending: Option<Operation>,
    max_batch: usize,
}

impl Iterator for ReadBatches {
    type Item = BatchedOperation;

    fn next(&mut self) -> Option<BatchedOperation> {
        let first = match self.pending.take() {
            Some(op) => op,
            None => self.inner.next()?,
        };
        match first {
            Operation::Read(idx) => {
                let mut reads: Vec<usize> = vec![idx];
                while reads.len() < self.max_batch {
                    match self.inner.next() {
                        Some(Operation::Read(idx)) => reads.push(idx),
                        Some(other) => {
                            self.pending = Some(other);
                            break;
                        }
                        None => break,
                    }
                }
                Some(BatchedOperation::Reads(reads))
            }
            Operation::Scan(idx, len) => {
                let mut scans: Vec<(usize, usize)> = vec![(idx, len)];
                while scans.len() < self.max_batch {
                    match self.inner.next() {
                        Some(Operation::Scan(idx, len)) => scans.push((idx, len)),
                        Some(other) => {
                            self.pending = Some(other);
                            break;
                        }
                        None => break,
                    }
                }
                Some(BatchedOperation::Scans(scans))
            }
            other => Some(BatchedOperation::Other(other)),
        }
    }
}

impl WorkloadRun {
    /// The operation stream with consecutive reads (and consecutive scans)
    /// coalesced into batches of at most `max_batch` (≥ 1). Yields the same
    /// operations as [`operations`](WorkloadRun::operations), in the same
    /// order.
    pub fn batched_operations(&self, max_batch: usize) -> ReadBatches {
        assert!(max_batch >= 1, "batch size must be at least 1");
        ReadBatches {
            inner: self.operations(),
            pending: None,
            max_batch,
        }
    }

    /// The operation stream with consecutive reads *and* scans coalesced
    /// together into mixed batches of at most `max_batch` (≥ 1) — the
    /// stream shape the out-of-order scheduler consumes: a read-heavy
    /// stretch with occasional scans (workload B/E mixtures) stays in one
    /// pipeline instead of breaking a batch at every kind change. Yields
    /// the same operations as [`operations`](WorkloadRun::operations), in
    /// the same order.
    pub fn mixed_batched_operations(&self, max_batch: usize) -> MixedBatches {
        assert!(max_batch >= 1, "batch size must be at least 1");
        MixedBatches {
            inner: self.operations(),
            pending: None,
            max_batch,
        }
    }
}

/// One request of a mixed read/scan batch, in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedOp {
    /// Point lookup of key `idx`.
    Read(usize),
    /// Range scan starting at key `idx`, fetching up to `len` entries.
    Scan(usize, usize),
}

/// An operation-stream item after mixed coalescing: maximal runs of
/// reads-or-scans become one [`MixedBatchedOperation::Mixed`] batch
/// (served by a single out-of-order scheduler pass); writes pass through
/// unchanged and in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixedBatchedOperation {
    /// `1..=max_batch` consecutive point reads and/or range scans in
    /// stream order (duplicates allowed).
    Mixed(Vec<MixedOp>),
    /// Any other operation, at its original position in the stream.
    Other(Operation),
}

/// Iterator adapter coalescing consecutive [`Operation::Read`]s and
/// [`Operation::Scan`]s — in any interleaving — into mixed batches.
///
/// Like [`ReadBatches`], operations are never reordered, so executing a
/// mixed-batched stream is observationally identical to the scalar
/// stream.
pub struct MixedBatches {
    inner: OperationStream,
    /// An operation of another kind pulled while closing the previous batch.
    pending: Option<Operation>,
    max_batch: usize,
}

impl Iterator for MixedBatches {
    type Item = MixedBatchedOperation;

    fn next(&mut self) -> Option<MixedBatchedOperation> {
        let first = match self.pending.take() {
            Some(op) => op,
            None => self.inner.next()?,
        };
        let mut batch: Vec<MixedOp> = match first {
            Operation::Read(idx) => vec![MixedOp::Read(idx)],
            Operation::Scan(idx, len) => vec![MixedOp::Scan(idx, len)],
            other => return Some(MixedBatchedOperation::Other(other)),
        };
        while batch.len() < self.max_batch {
            match self.inner.next() {
                Some(Operation::Read(idx)) => batch.push(MixedOp::Read(idx)),
                Some(Operation::Scan(idx, len)) => batch.push(MixedOp::Scan(idx, len)),
                Some(other) => {
                    self.pending = Some(other);
                    break;
                }
                None => break,
            }
        }
        Some(MixedBatchedOperation::Mixed(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(run: &WorkloadRun) -> (usize, usize, usize, usize, usize) {
        let (mut r, mut u, mut i, mut s, mut m) = (0, 0, 0, 0, 0);
        for op in run.operations() {
            match op {
                Operation::Read(_) => r += 1,
                Operation::Update(_) => u += 1,
                Operation::Insert(_) => i += 1,
                Operation::Scan(..) => s += 1,
                Operation::ReadModifyWrite(_) => m += 1,
            }
        }
        (r, u, i, s, m)
    }

    #[test]
    fn operation_mixes_match_specification() {
        let n = 100_000;
        let loaded = 10_000;
        let tol = |x: usize, expect: f64| {
            let got = x as f64 / n as f64;
            (got - expect).abs() < 0.01
        };

        let (r, u, i, s, m) = mix(&WorkloadRun::new(
            Workload::A,
            RequestDistribution::Uniform,
            loaded,
            n,
            1,
        ));
        assert!(tol(r, 0.5) && tol(u, 0.5) && i == 0 && s == 0 && m == 0);

        let (r, u, ..) = mix(&WorkloadRun::new(
            Workload::B,
            RequestDistribution::Uniform,
            loaded,
            n,
            1,
        ));
        assert!(tol(r, 0.95) && tol(u, 0.05));

        let (r, u, i, s, m) = mix(&WorkloadRun::new(
            Workload::C,
            RequestDistribution::Zipfian,
            loaded,
            n,
            1,
        ));
        assert!(r == n && u == 0 && i == 0 && s == 0 && m == 0);

        let (r, _, i, ..) = mix(&WorkloadRun::new(
            Workload::D,
            RequestDistribution::Uniform,
            loaded,
            n,
            1,
        ));
        assert!(tol(r, 0.95) && tol(i, 0.05));

        let (_, _, i, s, _) = mix(&WorkloadRun::new(
            Workload::E,
            RequestDistribution::Uniform,
            loaded,
            n,
            1,
        ));
        assert!(tol(s, 0.95) && tol(i, 0.05));

        let (r, _, _, _, m) = mix(&WorkloadRun::new(
            Workload::F,
            RequestDistribution::Zipfian,
            loaded,
            n,
            1,
        ));
        assert!(tol(r, 0.5) && tol(m, 0.5));
    }

    #[test]
    fn insert_indices_are_sequential_reserve_keys() {
        let run = WorkloadRun::new(Workload::D, RequestDistribution::Uniform, 1_000, 10_000, 2);
        let mut expected = 1_000;
        let mut inserts = 0;
        for op in run.operations() {
            match op {
                Operation::Insert(idx) => {
                    assert_eq!(idx, expected);
                    expected += 1;
                    inserts += 1;
                }
                Operation::Read(idx) => assert!(idx < expected, "reads only touch existing keys"),
                _ => {}
            }
        }
        assert!(inserts <= run.reserve_keys(), "reserve covers all inserts");
    }

    #[test]
    fn scan_lengths_bounded_by_100() {
        let run = WorkloadRun::new(Workload::E, RequestDistribution::Uniform, 1_000, 20_000, 3);
        let mut max_len = 0;
        for op in run.operations() {
            if let Operation::Scan(idx, len) = op {
                assert!((1..=MAX_SCAN_LEN).contains(&len));
                assert!(idx < 1_000 + run.reserve_keys());
                max_len = max_len.max(len);
            }
        }
        assert!(max_len > 90, "scan lengths cover the full range");
    }

    #[test]
    fn zipfian_requests_are_skewed() {
        let run = WorkloadRun::new(Workload::C, RequestDistribution::Zipfian, 10_000, 100_000, 4);
        let mut counts = std::collections::HashMap::new();
        for op in run.operations() {
            if let Operation::Read(idx) = op {
                *counts.entry(idx).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0) as f64;
        // The hottest key draws far more than uniform share (10 per key).
        assert!(max > 1_000.0, "hottest key drew {max}");
    }

    #[test]
    fn latest_reads_follow_recent_inserts() {
        let run = WorkloadRun::new(Workload::D, RequestDistribution::Uniform, 10_000, 50_000, 5);
        let mut live = 10_000usize;
        let mut recent_reads = 0usize;
        let mut reads = 0usize;
        for op in run.operations() {
            match op {
                Operation::Insert(_) => live += 1,
                Operation::Read(idx) => {
                    reads += 1;
                    if idx + 100 >= live {
                        recent_reads += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(
            recent_reads as f64 / reads as f64 > 0.3,
            "latest distribution prefers recent keys"
        );
    }

    #[test]
    fn batched_stream_preserves_operation_order() {
        for workload in Workload::ALL {
            let run = WorkloadRun::new(workload, RequestDistribution::Uniform, 2_000, 20_000, 9);
            let scalar: Vec<Operation> = run.operations().collect();
            let mut replayed = Vec::with_capacity(scalar.len());
            for item in run.batched_operations(8) {
                match item {
                    BatchedOperation::Reads(idxs) => {
                        assert!(!idxs.is_empty() && idxs.len() <= 8);
                        replayed.extend(idxs.into_iter().map(Operation::Read));
                    }
                    BatchedOperation::Scans(reqs) => {
                        assert!(!reqs.is_empty() && reqs.len() <= 8);
                        replayed
                            .extend(reqs.into_iter().map(|(idx, len)| Operation::Scan(idx, len)));
                    }
                    BatchedOperation::Other(op) => {
                        assert!(!matches!(op, Operation::Read(_) | Operation::Scan(..)));
                        replayed.push(op);
                    }
                }
            }
            assert_eq!(replayed, scalar, "workload {workload:?}");
        }
    }

    #[test]
    fn read_only_stream_fills_whole_batches() {
        let run = WorkloadRun::new(Workload::C, RequestDistribution::Uniform, 1_000, 1_003, 11);
        let batches: Vec<BatchedOperation> = run.batched_operations(16).collect();
        // 1003 reads → 62 full batches of 16 plus a tail of 11.
        assert_eq!(batches.len(), 63);
        for (i, b) in batches.iter().enumerate() {
            match b {
                BatchedOperation::Reads(idxs) => {
                    assert_eq!(idxs.len(), if i < 62 { 16 } else { 11 });
                }
                _ => panic!("workload C is read-only"),
            }
        }
    }

    #[test]
    fn batch_of_one_degenerates_to_scalar_stream() {
        let run = WorkloadRun::new(Workload::A, RequestDistribution::Zipfian, 1_000, 5_000, 13);
        let scalar: Vec<Operation> = run.operations().collect();
        let singles: Vec<Operation> = run
            .batched_operations(1)
            .map(|item| match item {
                BatchedOperation::Reads(idxs) => {
                    assert_eq!(idxs.len(), 1);
                    Operation::Read(idxs[0])
                }
                BatchedOperation::Scans(reqs) => {
                    assert_eq!(reqs.len(), 1);
                    Operation::Scan(reqs[0].0, reqs[0].1)
                }
                BatchedOperation::Other(op) => op,
            })
            .collect();
        assert_eq!(singles, scalar);
    }

    #[test]
    fn scan_heavy_stream_coalesces_scans() {
        // Workload E is 95% scans: most batched items must be full scan
        // groups, and inserts must stay at their original positions.
        let run = WorkloadRun::new(Workload::E, RequestDistribution::Uniform, 2_000, 20_000, 17);
        let mut scan_groups = 0usize;
        let mut full_groups = 0usize;
        let mut scans = 0usize;
        for item in run.batched_operations(8) {
            match item {
                BatchedOperation::Scans(reqs) => {
                    scan_groups += 1;
                    scans += reqs.len();
                    if reqs.len() == 8 {
                        full_groups += 1;
                    }
                }
                BatchedOperation::Other(op) => {
                    assert!(matches!(op, Operation::Insert(_)), "E mixes scans and inserts only");
                }
                BatchedOperation::Reads(_) => panic!("workload E has no point reads"),
            }
        }
        assert!(scans > 18_000, "95% of 20k ops are scans");
        // With a 5% insert rate the expected scan-run length is ~19, so a
        // clear majority of groups arrive full (a run of length L yields
        // ⌊L/8⌋ full groups plus at most one partial one).
        assert!(full_groups * 2 > scan_groups, "most scan groups are full");
    }

    #[test]
    fn mixed_batched_stream_preserves_operation_order() {
        for workload in Workload::ALL {
            let run = WorkloadRun::new(workload, RequestDistribution::Uniform, 2_000, 20_000, 21);
            let scalar: Vec<Operation> = run.operations().collect();
            let mut replayed = Vec::with_capacity(scalar.len());
            for item in run.mixed_batched_operations(8) {
                match item {
                    MixedBatchedOperation::Mixed(ops) => {
                        assert!(!ops.is_empty() && ops.len() <= 8);
                        replayed.extend(ops.into_iter().map(|op| match op {
                            MixedOp::Read(idx) => Operation::Read(idx),
                            MixedOp::Scan(idx, len) => Operation::Scan(idx, len),
                        }));
                    }
                    MixedBatchedOperation::Other(op) => {
                        assert!(!matches!(op, Operation::Read(_) | Operation::Scan(..)));
                        replayed.push(op);
                    }
                }
            }
            assert_eq!(replayed, scalar, "workload {workload:?}");
        }
    }

    #[test]
    fn mixed_batches_span_read_scan_boundaries() {
        // Workload B sprinkles updates into reads; synthesize a read+scan
        // mix via workload E + B comparison instead: on E (scans+inserts),
        // mixed batching must coalesce exactly like scan batching.
        let run = WorkloadRun::new(Workload::E, RequestDistribution::Uniform, 2_000, 20_000, 17);
        let plain: usize = run.batched_operations(8).count();
        let mixed: usize = run.mixed_batched_operations(8).count();
        assert_eq!(mixed, plain, "single-kind streams coalesce identically");

        // A hand-rolled interleaving: reads and scans alternate, so plain
        // batching degenerates to singleton groups while mixed batching
        // keeps the pipeline full across the kind changes.
        let run = WorkloadRun::new(Workload::A, RequestDistribution::Uniform, 2_000, 20_000, 23);
        let reads_and_writes: usize = run.batched_operations(8).count();
        let mixed_count: usize = run.mixed_batched_operations(8).count();
        assert!(mixed_count <= reads_and_writes);
    }

    #[test]
    fn streams_are_deterministic() {
        let mk = || {
            WorkloadRun::new(Workload::A, RequestDistribution::Zipfian, 5_000, 1_000, 7)
                .operations()
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
