//! Shard dispatch planning for thread-per-core drivers.
//!
//! A thread-per-core execution layer (DESIGN.md §17) routes every request
//! of a batch to the shard owning its key, runs each shard's group on that
//! shard's core, and reassembles results in request order. The grouping
//! step is index-agnostic — it only needs a `slot → shard` function — so
//! it lives here with the workload generator rather than in the index
//! crate: benchmark drivers plan the dispatch once per batch and then
//! drive whatever per-shard execution path they are measuring.
//!
//! [`ShardPlan`] is that reusable grouping: counting-sort the batch slots
//! by shard (stable, so each shard sees its requests in original order)
//! into one contiguous `order` array with per-shard `starts` offsets.
//! Buffers persist across [`build`](ShardPlan::build) calls, so a warm
//! plan allocates nothing.

/// A batch's request slots grouped by shard, in request order per shard.
///
/// ```
/// use hot_ycsb::dispatch::ShardPlan;
///
/// let shard_of = [1usize, 0, 1, 0];  // slot → shard
/// let mut plan = ShardPlan::new();
/// plan.build(2, shard_of.len(), |slot| shard_of[slot]);
/// assert_eq!(plan.group(0), &[1, 3]);
/// assert_eq!(plan.group(1), &[0, 2]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ShardPlan {
    /// Shard `s` owns `order[starts[s]..starts[s + 1]]`; length is the
    /// shard count plus one (empty before the first `build`).
    starts: Vec<usize>,
    /// Original batch slots, grouped by shard, ascending within a group.
    order: Vec<u32>,
}

impl ShardPlan {
    /// An empty plan; [`build`](Self::build) gives it contents.
    pub fn new() -> ShardPlan {
        ShardPlan::default()
    }

    /// Plan the dispatch of a batch of `len` slots over `shards` shards,
    /// where `shard_of(slot)` names the owning shard. Two passes (count,
    /// then stable scatter), reusing the plan's buffers.
    ///
    /// # Panics
    /// Panics if `shards` is zero, `len` exceeds `u32::MAX`, or
    /// `shard_of` returns an out-of-range shard.
    pub fn build<F>(&mut self, shards: usize, len: usize, mut shard_of: F)
    where
        F: FnMut(usize) -> usize,
    {
        assert!(shards > 0, "at least one shard");
        assert!(len <= u32::MAX as usize, "slots fit in u32");
        self.starts.clear();
        self.starts.resize(shards + 1, 0);
        self.order.clear();
        self.order.resize(len, 0);
        // Pass 1: histogram into starts[1..], then prefix-sum so that
        // starts[s] is shard s's write cursor.
        let mut owner: Vec<u32> = Vec::with_capacity(len);
        for slot in 0..len {
            let s = shard_of(slot);
            assert!(s < shards, "shard {s} out of range 0..{shards}");
            owner.push(s as u32);
            self.starts[s + 1] += 1;
        }
        for s in 0..shards {
            self.starts[s + 1] += self.starts[s];
        }
        // Pass 2: stable scatter by walking slots in order.
        let mut cursor = self.starts.clone();
        for (slot, &s) in owner.iter().enumerate() {
            let c = &mut cursor[s as usize];
            self.order[*c] = slot as u32;
            *c += 1;
        }
    }

    /// Number of shards the last [`build`](Self::build) planned for
    /// (zero before the first build).
    pub fn shards(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Number of slots in the planned batch.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the planned batch is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Shard `s`'s slots, ascending (original request order).
    ///
    /// # Panics
    /// Panics if `s` is not below [`shards`](Self::shards).
    pub fn group(&self, s: usize) -> &[u32] {
        &self.order[self.starts[s]..self.starts[s + 1]]
    }

    /// All slots grouped by shard, shard 0 first — `group` concatenated.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Per-shard group boundaries into [`order`](Self::order); length is
    /// the shard count plus one.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }
}

#[cfg(test)]
mod tests {
    use super::ShardPlan;

    #[test]
    fn groups_are_stable_and_cover_every_slot() {
        let owners = [2usize, 0, 1, 2, 0, 0, 3, 1];
        let mut plan = ShardPlan::new();
        plan.build(4, owners.len(), |slot| owners[slot]);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.len(), owners.len());
        assert_eq!(plan.group(0), &[1, 4, 5]);
        assert_eq!(plan.group(1), &[2, 7]);
        assert_eq!(plan.group(2), &[0, 3]);
        assert_eq!(plan.group(3), &[6]);
        // Every slot appears exactly once across the groups.
        let mut seen: Vec<u32> = plan.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..owners.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn rebuild_reuses_buffers_and_resizes() {
        let mut plan = ShardPlan::new();
        plan.build(3, 5, |slot| slot % 3);
        assert_eq!(plan.group(0), &[0, 3]);
        // Shrinks: fewer shards, fewer slots.
        plan.build(2, 3, |_| 1);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.group(0), &[] as &[u32]);
        assert_eq!(plan.group(1), &[0, 1, 2]);
    }

    #[test]
    fn empty_batch_has_empty_groups() {
        let mut plan = ShardPlan::new();
        plan.build(2, 0, |_| unreachable!("no slots to classify"));
        assert!(plan.is_empty());
        assert_eq!(plan.group(0), &[] as &[u32]);
        assert_eq!(plan.group(1), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        ShardPlan::new().build(2, 1, |_| 2);
    }
}
