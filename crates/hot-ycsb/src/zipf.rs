//! Request-distribution generators: YCSB's Zipfian and "latest".
//!
//! The Zipfian generator is a port of the incremental algorithm YCSB uses
//! (after Gray et al., "Quickly Generating Billion-Record Synthetic
//! Databases"): item `i` (0-based, rank order) is drawn with probability
//! proportional to `1 / (i + 1)^θ`, with θ = 0.99 by default. The *scrambled*
//! variant hashes the rank so that popular items spread over the key space,
//! which is what the index micro-benchmark uses to pick request keys.

use rand::Rng;

/// Default YCSB skew parameter.
pub const DEFAULT_THETA: f64 = 0.99;

/// Incremental Zipfian generator over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct summation; n is the item count of the key space. For the
    // multi-million-key runs this is O(n) once per generator — measured in
    // milliseconds and hoisted out of the timed sections by the harness.
    let mut sum = 0.0;
    for i in 0..n {
        sum += 1.0 / ((i + 1) as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Zipfian over `0..items` with skew `theta`.
    pub fn new(items: u64, theta: f64) -> Zipfian {
        assert!(items >= 1);
        assert!((0.0..1.0).contains(&theta), "theta in [0,1)");
        let zetan = zeta(items, theta);
        let zeta2theta = zeta(2, theta);
        Zipfian {
            items,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    /// With the default YCSB θ = 0.99.
    pub fn with_default_theta(items: u64) -> Zipfian {
        Zipfian::new(items, DEFAULT_THETA)
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draw a rank in `0..items` (0 is the most popular).
    pub fn next_rank<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.items as f64) * spread) as u64
    }

    /// Draw a *scrambled* item in `0..items`: the rank is hashed so hot
    /// items are spread uniformly over the key space (YCSB's
    /// `ScrambledZipfianGenerator`).
    pub fn next_scrambled<R: Rng>(&self, rng: &mut R) -> u64 {
        fnv1a64(self.next_rank(rng)) % self.items
    }

    #[allow(dead_code)]
    fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// YCSB's "latest" distribution (workload D): recent items are popular.
/// Draw = `max - zipfian_rank`, clamped to the current item count.
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Latest distribution over an initial window of `items`.
    pub fn new(items: u64) -> Latest {
        Latest {
            zipf: Zipfian::with_default_theta(items),
        }
    }

    /// Draw an index in `0..current_items`, skewed toward the most recent
    /// (`current_items - 1`).
    pub fn next<R: Rng>(&self, rng: &mut R, current_items: u64) -> u64 {
        debug_assert!(current_items >= 1);
        let rank = self.zipf.next_rank(rng) % current_items;
        current_items - 1 - rank
    }
}

/// 64-bit FNV-1a hash (the scrambler YCSB uses).
#[inline]
pub fn fnv1a64(v: u64) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in v.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::with_default_theta(1000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(z.next_rank(&mut rng) < 1000);
            assert!(z.next_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let n = 10_000u64;
        let z = Zipfian::with_default_theta(n);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 200_000;
        let mut rank0 = 0u64;
        let mut top1pct = 0u64;
        for _ in 0..draws {
            let r = z.next_rank(&mut rng);
            if r == 0 {
                rank0 += 1;
            }
            if r < n / 100 {
                top1pct += 1;
            }
        }
        // With θ=0.99 and n=10⁴, P(rank 0) ≈ 1/zetan ≈ 9.5%, and the top 1%
        // of items draw well over a third of the traffic.
        let p0 = rank0 as f64 / draws as f64;
        assert!(p0 > 0.05 && p0 < 0.15, "P(rank 0) = {p0}");
        let p1 = top1pct as f64 / draws as f64;
        assert!(p1 > 0.35, "top 1% share = {p1}");
    }

    #[test]
    fn uniform_vs_zipf_theta_zero() {
        // θ → 0 degenerates toward uniform: rank 0 close to 1/n share.
        let z = Zipfian::new(100, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 100_000;
        let hits = (0..draws).filter(|_| z.next_rank(&mut rng) == 0).count();
        let p = hits as f64 / draws as f64;
        assert!(p < 0.05, "near-uniform rank-0 share {p}");
    }

    #[test]
    fn scrambled_spreads_hot_items() {
        let z = Zipfian::with_default_theta(1_000);
        let mut rng = StdRng::seed_from_u64(11);
        // The most common scrambled values must not be adjacent small ints.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.next_scrambled(&mut rng)).or_insert(0u32) += 1;
        }
        let mut top: Vec<(u64, u32)> = counts.into_iter().collect();
        top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let hot: Vec<u64> = top.iter().take(4).map(|&(k, _)| k).collect();
        let all_small = hot.iter().all(|&k| k < 10);
        assert!(!all_small, "scrambling should spread hot keys: {hot:?}");
    }

    #[test]
    fn latest_prefers_recent() {
        let l = Latest::new(1_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut recent = 0;
        let draws = 50_000;
        for _ in 0..draws {
            let v = l.next(&mut rng, 1_000);
            assert!(v < 1_000);
            if v >= 990 {
                recent += 1;
            }
        }
        let p = recent as f64 / draws as f64;
        assert!(p > 0.3, "latest-10 share = {p}");
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipfian::with_default_theta(500);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.next_scrambled(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| z.next_scrambled(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
