//! YCSB-style index micro-benchmark (Section 6.1 of the HOT paper).
//!
//! Reimplements the workload setup of Zhang et al.'s index micro-benchmark
//! (itself adapted from the YCSB framework) that the paper's evaluation is
//! built on:
//!
//! * the six **core workloads** A–F ([`Workload`]) with their operation
//!   mixes (A: 50/50 read/update, B: 95/5, C: read-only, D: latest-read with
//!   5% inserts, E: 95% short range scans + 5% inserts, F: 50% read / 50%
//!   read-modify-write);
//! * **request distributions**: uniform and Zipfian (plus "latest" for
//!   workload D), via a faithful port of YCSB's incremental Zipfian
//!   generator ([`zipf::Zipfian`]);
//! * the four **data sets** ([`dataset`]): synthetic stand-ins for the
//!   paper's url (≈55-byte URLs), email (≈23-byte addresses), yago (8-byte
//!   compound triples with the paper's exact bit layout) and integer
//!   (uniform 63-bit) keys — see DESIGN.md §5 for why the synthetic
//!   generators preserve the relevant key-distribution behaviour.
//!
//! The generator is deterministic given a seed, so every index structure
//! executes the identical operation sequence.

#![deny(missing_docs)]

pub mod dataset;
pub mod dispatch;
#[cfg(feature = "metrics")]
pub mod phase;
pub mod workload;
pub mod zipf;

pub use dataset::{Dataset, DatasetKind};
pub use dispatch::ShardPlan;
pub use workload::{
    BatchedOperation, MixedBatchedOperation, MixedBatches, MixedOp, Operation, ReadBatches,
    RequestDistribution, Workload, WorkloadRun,
};
pub use zipf::{Latest, Zipfian};
