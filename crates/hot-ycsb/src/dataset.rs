//! The four data sets of Section 6.1, as deterministic synthetic generators.
//!
//! The paper uses one real URL corpus, one real email corpus, the Yago2
//! triple ids and uniform 63-bit random integers. The real corpora are not
//! redistributable, so this module synthesizes stand-ins that preserve what
//! the index structures actually react to — key length, shared-prefix
//! structure and byte-level sparsity (see DESIGN.md §5):
//!
//! * **url** — `http(s)://{host}/{path…}` with Zipf-popular hosts, shared
//!   directory trees and dataset-average ≈ 55 bytes;
//! * **email** — `{first}.{last}{digits}@{domain}` with Zipf-popular names
//!   and domains, average ≈ 23 bytes;
//! * **yago** — 8-byte compound triple keys with the paper's exact bit
//!   layout (bits 38–63 subject, 27–37 predicate, 0–26 object) and skewed
//!   subject/predicate reuse;
//! * **integer** — uniform 63-bit random integers.
//!
//! String keys carry the 0x00 terminator (prefix-free); integer/yago keys
//! are fixed-width big-endian. Generators are deterministic per seed and
//! return the keys in **random (shuffled) order**, matching the paper's
//! "load phase inserts … keys in random order".

use crate::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Which of the paper's four data sets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ≈55-byte URLs.
    Url,
    /// ≈23-byte email addresses.
    Email,
    /// 8-byte yago triple keys.
    Yago,
    /// 8-byte uniform 63-bit integers.
    Integer,
}

impl DatasetKind {
    /// All four, in the paper's column order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Url,
        DatasetKind::Email,
        DatasetKind::Yago,
        DatasetKind::Integer,
    ];

    /// The label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Url => "url",
            DatasetKind::Email => "email",
            DatasetKind::Yago => "yago",
            DatasetKind::Integer => "integer",
        }
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;

    /// Parse a figure label (`"url"`, `"email"`, `"yago"`, `"integer"`,
    /// case-insensitive) — the CLI convention of the server and the
    /// network YCSB driver.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DatasetKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown data set {s:?} (expected url/email/yago/integer)"))
    }
}

/// A generated key set: distinct, prefix-free, in shuffled insert order.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The data-set kind.
    pub kind: DatasetKind,
    /// Encoded keys in load (insert) order.
    pub keys: Vec<Vec<u8>>,
}

impl Dataset {
    /// Generate `n` distinct keys of the given kind, deterministically for
    /// `seed`.
    pub fn generate(kind: DatasetKind, n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DA7_A5E7 ^ kind as u64);
        let mut keys = match kind {
            DatasetKind::Url => gen_urls(n, &mut rng),
            DatasetKind::Email => gen_emails(n, &mut rng),
            DatasetKind::Yago => gen_yago(n, &mut rng),
            DatasetKind::Integer => gen_integers(n, &mut rng),
        };
        keys.shuffle(&mut rng);
        Dataset { kind, keys }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Average encoded key length in bytes.
    pub fn avg_key_len(&self) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        self.keys.iter().map(|k| k.len()).sum::<usize>() as f64 / self.keys.len() as f64
    }

    /// Total raw key bytes (Figure 9's dashed "raw key" line).
    pub fn raw_key_bytes(&self) -> usize {
        self.keys.iter().map(|k| k.len()).sum()
    }

    /// Key indices in ascending key-byte order — the input order sorted
    /// bulk loading wants. The sort itself is the data-preparation step a
    /// real load pipeline does once up front, so harnesses keep it outside
    /// the timed region.
    pub fn sorted_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.keys.len()).collect();
        order.sort_unstable_by(|&a, &b| self.keys[a].cmp(&self.keys[b]));
        order
    }
}

fn gen_integers(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    let mut seen = HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let v: u64 = rng.gen::<u64>() >> 1; // 63-bit
        if seen.insert(v) {
            keys.push(hot_keys::encode_u64(v).to_vec());
        }
    }
    keys
}

fn gen_yago(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    // Yago2 triples: few predicates, Zipf-popular subjects, many objects —
    // a dense-ish region in the subject bits, sparse in the object bits.
    let subjects = ((n / 12).max(64) as u64).min(1 << 26);
    let predicates = 40u64;
    let subject_dist = Zipfian::with_default_theta(subjects);
    let predicate_dist = Zipfian::new(predicates, 0.6);

    let mut seen = HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let s = subject_dist.next_scrambled(rng) as u32;
        let p = predicate_dist.next_rank(rng) as u32;
        let o = rng.gen_range(0..1u32 << 27);
        let key = hot_keys::encode_yago(s, p, o).expect("fields fit");
        if seen.insert(key) {
            keys.push(key.to_vec());
        }
    }
    keys
}

const FIRST_NAMES: &[&str] = &[
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "karen",
    "chris", "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "sandra", "mark", "ashley",
    "donald", "kim", "steven", "donna", "paul", "emily", "andrew", "michelle", "joshua", "carol",
    "ken", "amanda", "kevin", "melissa", "brian", "deborah", "george", "stephanie", "timothy",
    "rebecca", "ronald", "sharon",
];

const LAST_NAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "rodriguez",
    "martinez", "hernandez", "lopez", "gonzalez", "wilson", "anderson", "thomas", "taylor",
    "moore", "jackson", "martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
    "clark", "ramirez", "lewis", "robinson", "walker", "young", "allen", "king", "wright",
    "scott", "torres", "nguyen", "hill", "flores", "green", "adams", "nelson", "baker", "hall",
    "rivera", "campbell", "mitchell", "carter", "roberts",
];

const EMAIL_DOMAINS: &[&str] = &[
    "gmail.com", "yahoo.com", "hotmail.com", "aol.com", "outlook.com", "icloud.com", "gmx.at",
    "web.de", "mail.ru", "proton.me", "uibk.ac.at", "tum.de", "example.org", "fastmail.fm",
    "zoho.com", "yandex.ru",
];

fn gen_emails(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    // "23 byte long email addresses or emails solely consisting of numbers"
    let domain_dist = Zipfian::with_default_theta(EMAIL_DOMAINS.len() as u64);
    let first_dist = Zipfian::new(FIRST_NAMES.len() as u64, 0.8);
    let last_dist = Zipfian::new(LAST_NAMES.len() as u64, 0.8);
    let mut seen = HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let addr = if rng.gen_bool(0.06) {
            // All-numeric local parts occur in the paper's corpus.
            format!(
                "{}@{}",
                rng.gen_range(100_000u64..99_999_999),
                EMAIL_DOMAINS[domain_dist.next_rank(rng) as usize]
            )
        } else {
            let first = FIRST_NAMES[first_dist.next_rank(rng) as usize];
            let last = LAST_NAMES[last_dist.next_rank(rng) as usize];
            let sep = ["", ".", "_"][rng.gen_range(0..3usize)];
            let num = if rng.gen_bool(0.55) {
                format!("{}", rng.gen_range(1..9999))
            } else {
                String::new()
            };
            format!(
                "{first}{sep}{last}{num}@{}",
                EMAIL_DOMAINS[domain_dist.next_rank(rng) as usize]
            )
        };
        if seen.insert(addr.clone()) {
            keys.push(hot_keys::str_key(addr.as_bytes()).expect("valid email key"));
        }
    }
    keys
}

const URL_HOSTS: &[&str] = &[
    "en.wikipedia.org", "www.youtube.com", "www.facebook.com", "www.google.com", "twitter.com",
    "www.amazon.com", "www.reddit.com", "www.instagram.com", "github.com", "stackoverflow.com",
    "www.linkedin.com", "www.netflix.com", "www.nytimes.com", "www.bbc.co.uk", "www.cnn.com",
    "news.ycombinator.com", "www.tum.de", "www.uibk.ac.at", "dl.acm.org", "arxiv.org",
    "www.spiegel.de", "www.derstandard.at", "medium.com", "www.quora.com", "www.ebay.com",
    "www.apple.com", "docs.rs", "crates.io", "www.rust-lang.org", "lwn.net", "www.kernel.org",
    "blog.acolyer.org",
];

const URL_SECTIONS: &[&str] = &[
    "articles", "wiki", "users", "products", "questions", "watch", "posts", "docs", "news",
    "category", "threads", "projects", "papers", "blog", "search", "item", "topic", "en",
    "research", "archive",
];

fn gen_urls(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    // "55 byte long URLs originating from a real-world data set": long,
    // sparsely distributed strings with heavy shared prefixes per host.
    let host_dist = Zipfian::with_default_theta(URL_HOSTS.len() as u64);
    let section_dist = Zipfian::new(URL_SECTIONS.len() as u64, 0.7);
    let mut seen = HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let scheme = if rng.gen_bool(0.8) { "https" } else { "http" };
        let host = URL_HOSTS[host_dist.next_rank(rng) as usize];
        let section = URL_SECTIONS[section_dist.next_rank(rng) as usize];
        let sub = URL_SECTIONS[section_dist.next_rank(rng) as usize];
        let url = match rng.gen_range(0..4) {
            0 => format!(
                "{scheme}://{host}/{section}/{:07}-{}.html",
                rng.gen_range(0..4_000_000),
                slugword(rng)
            ),
            1 => format!(
                "{scheme}://{host}/{section}/{sub}/{}-{}",
                slugword(rng),
                rng.gen_range(0..2_000_000)
            ),
            2 => format!(
                "{scheme}://{host}/{section}?id={}&ref={}",
                rng.gen_range(0..8_000_000),
                slugword(rng)
            ),
            _ => format!(
                "{scheme}://{host}/{section}/{sub}/{}/{}.php",
                rng.gen_range(1990..2026),
                slugword(rng)
            ),
        };
        if seen.insert(url.clone()) {
            keys.push(hot_keys::str_key(url.as_bytes()).expect("valid url key"));
        }
    }
    keys
}

const SLUG_WORDS: &[&str] = &[
    "height", "optimized", "trie", "index", "memory", "database", "systems", "adaptive", "radix",
    "latch", "free", "lookup", "random", "access", "modern", "hardware", "storage", "engine",
    "paper", "review", "update", "winter", "summer", "spring", "autumn", "alpha", "beta",
    "gamma", "delta",
];

fn slugword(rng: &mut StdRng) -> String {
    format!(
        "{}-{}",
        SLUG_WORDS[rng.gen_range(0..SLUG_WORDS.len())],
        SLUG_WORDS[rng.gen_range(0..SLUG_WORDS.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_distinct_keys() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::generate(kind, 5_000, 1);
            assert_eq!(ds.len(), 5_000, "{kind:?}");
            let set: HashSet<&Vec<u8>> = ds.keys.iter().collect();
            assert_eq!(set.len(), 5_000, "{kind:?} keys distinct");
        }
    }

    #[test]
    fn keys_are_prefix_free() {
        for kind in DatasetKind::ALL {
            let ds = Dataset::generate(kind, 2_000, 2);
            let mut sorted = ds.keys.clone();
            sorted.sort();
            for pair in sorted.windows(2) {
                assert!(
                    !pair[1].starts_with(&pair[0]),
                    "{kind:?}: {:?} prefixes {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn fixed_width_kinds_are_eight_bytes() {
        for kind in [DatasetKind::Yago, DatasetKind::Integer] {
            let ds = Dataset::generate(kind, 1_000, 3);
            assert!(ds.keys.iter().all(|k| k.len() == 8), "{kind:?}");
        }
    }

    #[test]
    fn average_lengths_match_paper() {
        let url = Dataset::generate(DatasetKind::Url, 20_000, 4);
        let email = Dataset::generate(DatasetKind::Email, 20_000, 4);
        // Paper: url avg 55 bytes, email avg 23 bytes (plus our terminator).
        let u = url.avg_key_len();
        let e = email.avg_key_len();
        assert!((45.0..68.0).contains(&u), "url avg {u}");
        assert!((18.0..30.0).contains(&e), "email avg {e}");
    }

    #[test]
    fn yago_bit_layout() {
        let ds = Dataset::generate(DatasetKind::Yago, 1_000, 5);
        for k in &ds.keys {
            let v = u64::from_be_bytes(k.as_slice().try_into().unwrap());
            let subject = v >> 38;
            let predicate = (v >> 27) & ((1 << 11) - 1);
            assert!(subject < 1 << 26);
            assert!(predicate < 40, "predicate pool is small");
        }
    }

    #[test]
    fn deterministic_per_seed_and_kind() {
        let a = Dataset::generate(DatasetKind::Email, 500, 9);
        let b = Dataset::generate(DatasetKind::Email, 500, 9);
        assert_eq!(a.keys, b.keys);
        let c = Dataset::generate(DatasetKind::Email, 500, 10);
        assert_ne!(a.keys, c.keys);
    }

    #[test]
    fn load_order_is_shuffled() {
        let ds = Dataset::generate(DatasetKind::Integer, 5_000, 6);
        let mut sorted = ds.keys.clone();
        sorted.sort();
        assert_ne!(ds.keys, sorted, "load order must be random");
    }
}
