//! Per-workload-phase metric tagging (DESIGN.md §13).
//!
//! A YCSB run has distinct phases — the load phase (pure inserts or one
//! bulk load) and the run phase (the workload's operation mix) — whose
//! latency profiles must not be conflated: a p99 over "load + run" answers
//! no question anyone asks. [`PhaseRecorder`] turns a stream of cumulative
//! [`MetricsSnapshot`]s into *per-phase deltas*: call
//! [`begin`](PhaseRecorder::begin) with the current snapshot when a phase
//! starts and [`finish`](PhaseRecorder::finish) with the current snapshot
//! when it ends, and each recorded [`Phase`] holds exactly the operations
//! that phase performed (counter diffs are exact; histogram diffs are
//! bucket-wise, so the phase percentiles are as accurate as the global
//! ones).
//!
//! Only compiled with the `metrics` cargo feature.

use hot_metrics::MetricsSnapshot;

/// One completed, named workload phase and its metrics delta.
pub struct Phase {
    /// Phase label, e.g. `"load"`, `"run:C"`, `"run:E"`.
    pub name: String,
    /// Operation/ROWEX deltas for exactly this phase (structural gauges
    /// are the point-in-time values at phase end).
    pub delta: MetricsSnapshot,
}

/// Tags successive metric snapshots with workload phase names by diffing.
///
/// ```
/// use hot_ycsb::phase::PhaseRecorder;
/// # let registry = hot_metrics::Registry::new();
/// let mut phases = PhaseRecorder::new();
/// phases.begin(registry.ops_snapshot());
/// // ... perform the load phase against the instrumented index ...
/// phases.finish("load", registry.ops_snapshot());
/// phases.begin(registry.ops_snapshot());
/// // ... perform the run phase ...
/// phases.finish("run:C", registry.ops_snapshot());
/// assert_eq!(phases.phases().len(), 2);
/// ```
#[derive(Default)]
pub struct PhaseRecorder {
    start: Option<MetricsSnapshot>,
    phases: Vec<Phase>,
}

impl PhaseRecorder {
    /// A recorder with no phases.
    pub fn new() -> PhaseRecorder {
        PhaseRecorder::default()
    }

    /// Mark a phase start: `snapshot` is the cumulative state right before
    /// the phase's first operation. Re-beginning before `finish` simply
    /// moves the start marker.
    pub fn begin(&mut self, snapshot: MetricsSnapshot) {
        self.start = Some(snapshot);
    }

    /// Close the current phase as `name`: `snapshot` is the cumulative
    /// state right after the phase's last operation. Without a matching
    /// [`begin`](Self::begin) the delta is taken from an all-zero start
    /// (i.e. the cumulative values).
    pub fn finish(&mut self, name: &str, snapshot: MetricsSnapshot) {
        let delta = match self.start.take() {
            Some(start) => snapshot.since(&start),
            None => snapshot,
        };
        self.phases.push(Phase {
            name: name.to_string(),
            delta,
        });
    }

    /// All completed phases, in recording order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Serialize all phases as one JSON object keyed by phase name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, p) in self.phases.iter().enumerate() {
            // Indent the phase's own JSON two spaces to nest legibly.
            let body = p.delta.to_json();
            let body = body.trim_end();
            out.push_str(&format!("\"{}\": {}{}\n", p.name, body,
                if i + 1 < self.phases.len() { "," } else { "" }));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hot_metrics::{OpKind, Registry};

    #[test]
    fn phases_hold_exact_deltas() {
        let reg = Registry::new();
        let mut rec = PhaseRecorder::new();

        rec.begin(reg.ops_snapshot());
        for _ in 0..7 {
            reg.record_ns(OpKind::Insert, 10);
        }
        rec.finish("load", reg.ops_snapshot());

        rec.begin(reg.ops_snapshot());
        for _ in 0..13 {
            reg.record_ns(OpKind::Get, 20);
        }
        rec.finish("run:C", reg.ops_snapshot());

        let phases = rec.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "load");
        assert_eq!(phases[0].delta.op(OpKind::Insert).count, 7);
        assert_eq!(phases[0].delta.op(OpKind::Get).count, 0);
        assert_eq!(phases[1].delta.op(OpKind::Get).count, 13);
        assert_eq!(phases[1].delta.op(OpKind::Get).hist_total(), 13);
        assert_eq!(phases[1].delta.op(OpKind::Insert).count, 0);

        let json = rec.to_json();
        assert!(json.contains("\"load\"") && json.contains("\"run:C\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
