//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! property-testing surface its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`], and [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map` and `boxed`, implemented for
//!   integer ranges, tuples, and string patterns (`"[a-d]{1,20}"`-style
//!   literals);
//! * [`arbitrary::any`] for primitive integers and `bool`;
//! * [`collection::vec`] and [`collection::btree_set`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed (`Debug`), which for this workspace's differential tests is
//!   enough to reproduce: generation is deterministic per test name, so a
//!   failure recurs on every run until fixed.
//! * **Generation is a plain seeded PRNG** (SplitMix64) with light edge-value
//!   biasing for `any::<uN>()` (zeros, ones, `MAX`, single-bit patterns show
//!   up ~1 case in 8), rather than proptest's recursive value trees.
//! * The `PROPTEST_CASES` environment variable scales the default case
//!   count; per-test `ProptestConfig::with_cases` is respected as-is.

// Vendored stand-in crate: linted like third-party code, not workspace code.
#![allow(clippy::all)]

/// Runner configuration and error plumbing.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases (other settings default).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed `prop_assert*` inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Build a failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic generation source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (stable across runs) plus the
        /// optional `PROPTEST_SEED` environment override.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a distinct stream per test.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse::<u64>() {
                    h ^= s;
                }
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

/// The generation abstraction: a recipe for producing values of one type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of type `Value`. Object-safe so heterogeneous
    /// branches can be unified behind [`BoxedStrategy`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (**self).gen_value(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// String literals are strategies: the pattern subset
    /// `[class]{m,n}`-style is generated directly (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::gen_from_pattern(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Weighted union of strategies — the engine behind [`crate::prop_oneof!`].
    pub struct OneOf<V> {
        choices: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        /// Build from `(weight, strategy)` pairs.
        pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = choices.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            OneOf { choices, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.choices {
                if pick < *w as u64 {
                    return s.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights covered above")
        }
    }
}

/// `any::<T>()` — the full domain of `T`, with edge-value biasing.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample the domain (biased toward boundary values).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1 case in 8: an edge pattern — catches off-by-one and
                    // carry bugs far faster than uniform sampling.
                    if rng.below(8) == 0 {
                        match rng.below(5) {
                            0 => 0,
                            1 => 1,
                            2 => <$t>::MAX,
                            3 => ((1u64.wrapping_shl(rng.below(<$t>::BITS as u64) as u32)) as $t),
                            _ => <$t>::MAX >> 1,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Admissible collection sizes (built from range literals).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// `BTreeSet<S::Value>` with a size drawn from `size` (element domain
    /// permitting — generation stops after a bounded number of attempts, so
    /// tiny domains yield smaller sets rather than looping forever).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            let max_attempts = target * 20 + 100;
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Generation for string-pattern strategies (`"[a-d]{1,20}"`).
pub mod string {
    use crate::test_runner::TestRng;

    /// Generate a string matching a small regex subset: literal characters
    /// and `[..]` character classes (with `a-z` ranges), each optionally
    /// quantified by `{n}`, `{m,n}`, `?`, `*`, or `+` (`*`/`+` capped at 8).
    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            assert!(!class.is_empty(), "empty class in pattern {pattern:?}");

            // Parse the quantifier, if any.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };

            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

/// The names test files import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
}

/// Assert inside a proptest body; failures abort only the current case with
/// the generated inputs printed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(left == right)` with both values printed on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n  {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(left != right)` with both values printed on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            left
        );
    }};
}

/// Discard the current case when its inputs don't satisfy a precondition.
/// (This stub counts discarded cases as passing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Weighted choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let values = ( $( $crate::strategy::Strategy::gen_value(&($strat), &mut rng), )+ );
                let inputs = format!("{:?}", values);
                let ( $($arg,)+ ) = values;
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_generates_matching_strings() {
        let mut rng = TestRng::deterministic("string_pattern");
        for _ in 0..500 {
            let s = crate::string::gen_from_pattern("[a-d]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()), "bad length {}", s.len());
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "bad char in {s:?}");
        }
        // Exact-count quantifier, literals, escapes.
        let s = crate::string::gen_from_pattern("ab[xy]{3}c\\[", &mut rng);
        assert_eq!(s.len(), 7);
        assert!(s.starts_with("ab") && s.ends_with("c["));
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            9 => (0u32..1).prop_map(|_| true),
            1 => (0u32..1).prop_map(|_| false),
        ];
        let mut rng = TestRng::deterministic("weights");
        let hits = (0..1_000).filter(|_| strat.gen_value(&mut rng)).count();
        assert!((800..1_000).contains(&hits), "9:1 weighting gave {hits}/1000");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::deterministic("sizes");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u64>(), 3..10).gen_value(&mut rng);
            assert!((3..10).contains(&v.len()));
            let s = prop::collection::btree_set(0u64..1_000_000, 5..=8).gen_value(&mut rng);
            assert!((5..=8).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_args(x in any::<u64>(), y in 10u64..20, s in "[ab]{2,4}") {
            prop_assert!(y >= 10 && y < 20);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
            let _ = x;
        }

        #[test]
        fn macro_supports_patterns(ops in prop::collection::vec((0u8..4, any::<u16>()), 1..30)) {
            for (op, val) in ops {
                prop_assert!(op < 4);
                let _ = val;
            }
        }
    }
}
