//! Cooperative scheduler: one active model thread at a time, deterministic
//! replay of recorded scheduling decisions, DFS backtracking over untried
//! alternatives under a preemption bound. See the crate docs for the big
//! picture; this module is the machinery.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::{Condvar, Mutex, MutexGuard};

/// One recorded scheduling decision: which threads were runnable, which
/// was chosen, and whether the previously active thread was among the
/// candidates (switching away from it costs one unit of preemption
/// budget; switching away from a blocked/finished/yielded thread is free).
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    runnable: Vec<usize>,
    chosen: usize,
    active_was: Option<usize>,
}

impl Decision {
    fn is_preemption(&self) -> bool {
        self.active_was.is_some_and(|ai| self.chosen != ai)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    Runnable,
    /// Waiting for the thread with this id to finish.
    Blocked(usize),
    Finished,
}

#[derive(Debug)]
struct Th {
    state: ThState,
    /// Set by `yield_now`/`spin_loop`; deprioritizes the thread until all
    /// other runnable threads have been considered.
    yielded: bool,
}

/// State of one schedule execution.
pub(crate) struct Exec {
    threads: Vec<Th>,
    active: usize,
    /// Replay prefix + extension of the current schedule.
    pub(crate) path: Vec<Decision>,
    /// Replay cursor into `path`.
    pos: usize,
    preemptions: usize,
    bound: usize,
    steps: u64,
    max_steps: u64,
    /// First panic message observed in this schedule, if any.
    pub(crate) panic: Option<String>,
    /// Schedule trace captured when `panic` was set.
    pub(crate) failing_trace: Option<String>,
    /// Set on deadlock/teardown: waiting threads wake up and unwind.
    abort: bool,
    /// Threads not yet `Finished`.
    running: usize,
}

impl Exec {
    pub(crate) fn new(path: Vec<Decision>, bound: usize, max_steps: u64) -> Exec {
        Exec {
            threads: vec![Th {
                state: ThState::Runnable,
                yielded: false,
            }],
            active: 0,
            path,
            pos: 0,
            preemptions: 0,
            bound,
            steps: 0,
            max_steps,
            panic: None,
            failing_trace: None,
            abort: false,
            running: 1,
        }
    }

    fn trace_string(&self) -> String {
        let mut out = String::new();
        for d in &self.path[..self.pos] {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push('t');
            out.push_str(&d.runnable[d.chosen.min(d.runnable.len() - 1)].to_string());
            if d.is_preemption() {
                out.push('!');
            }
        }
        out
    }

    fn fail(&mut self, msg: String) {
        if self.panic.is_none() {
            self.failing_trace = Some(self.trace_string());
            self.panic = Some(msg);
        }
    }

    fn set_active(&mut self, id: usize) {
        self.active = id;
        self.threads[id].yielded = false;
    }

    /// Pick the next active thread. Called whenever the current thread
    /// yields, blocks, or finishes.
    fn schedule(&mut self) {
        if self.abort {
            return;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if self.running > 0 {
                self.fail("deadlock: every live thread is blocked on a join".into());
                self.abort = true;
            }
            return;
        }
        // Yield-aware candidate set: threads that called `yield_now` wait
        // until every non-yielded runnable thread has had its turn.
        let fresh: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&i| !self.threads[i].yielded)
            .collect();
        let cands = if fresh.is_empty() {
            for &i in &runnable {
                self.threads[i].yielded = false;
            }
            runnable
        } else {
            fresh
        };
        if cands.len() == 1 {
            self.set_active(cands[0]);
            return;
        }
        let active_idx = (self.threads[self.active].state == ThState::Runnable)
            .then(|| cands.iter().position(|&t| t == self.active))
            .flatten();
        let chosen_idx = if self.pos < self.path.len() {
            // Replay: exploration is deterministic, so the candidate set
            // matches the recorded one; the clamp is purely defensive.
            let c = self.path[self.pos].chosen.min(cands.len() - 1);
            self.pos += 1;
            c
        } else {
            if let Some(ai) = active_idx {
                if self.preemptions >= self.bound {
                    // Budget spent: continuing the active thread is forced,
                    // so no decision is recorded (nothing to backtrack).
                    self.set_active(cands[ai]);
                    return;
                }
            }
            let c = active_idx.unwrap_or(0);
            self.path.push(Decision {
                runnable: cands.clone(),
                chosen: c,
                active_was: active_idx,
            });
            self.pos += 1;
            c
        };
        if let Some(ai) = active_idx {
            if chosen_idx != ai {
                self.preemptions += 1;
            }
        }
        self.set_active(cands[chosen_idx]);
    }
}

static STATE: Mutex<Option<Exec>> = Mutex::new(None);
static CV: Condvar = Condvar::new();

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

type StateGuard = MutexGuard<'static, Option<Exec>>;

fn lock_state() -> StateGuard {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Model-thread id of the calling thread, or `None` outside a model run.
pub(crate) fn current_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

/// Install the execution state for a fresh schedule.
pub(crate) fn install(ex: Exec) {
    let mut st = lock_state();
    assert!(st.is_none(), "model already running");
    *st = Some(ex);
}

/// Block the driver until every model thread has finished.
pub(crate) fn wait_model_done() {
    let mut st = lock_state();
    loop {
        match st.as_ref() {
            Some(ex) if ex.running > 0 => {
                st = CV.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            _ => return,
        }
    }
}

/// Tear down and return the finished execution state.
pub(crate) fn take_exec() -> Exec {
    lock_state().take().expect("no model execution to take")
}

/// Wait (on the baton condvar) until this thread is the active one.
/// Panics — unwinding out of the model code — if the run was aborted.
fn wait_active(mut st: StateGuard, me: usize) -> StateGuard {
    loop {
        match st.as_ref() {
            Some(ex) if ex.abort => {
                drop(st);
                panic!("loom: model run aborted");
            }
            Some(ex) if ex.active == me => return st,
            Some(_) => {}
            None => return st,
        }
        st = CV.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// The heart of the model: every atomic operation funnels through here.
/// `voluntary` marks `yield_now`/`spin_loop` calls for deprioritization.
pub(crate) fn yield_point(me: usize, voluntary: bool) {
    let mut st = lock_state();
    let Some(ex) = st.as_mut() else { return };
    if ex.abort {
        drop(st);
        panic!("loom: model run aborted");
    }
    ex.steps += 1;
    if ex.steps > ex.max_steps {
        let msg = format!(
            "loom: schedule exceeded {} steps — livelock or unbounded loop in the model",
            ex.max_steps
        );
        ex.fail(msg.clone());
        drop(st);
        panic!("{}", msg);
    }
    if voluntary {
        ex.threads[me].yielded = true;
    }
    ex.schedule();
    CV.notify_all();
    let st = wait_active(st, me);
    drop(st);
}

/// Register a freshly spawned model thread; returns its id.
pub(crate) fn register_thread() -> usize {
    let mut st = lock_state();
    let ex = st.as_mut().expect("spawn outside a model run");
    ex.threads.push(Th {
        state: ThState::Runnable,
        yielded: false,
    });
    ex.running += 1;
    ex.threads.len() - 1
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".into()
    }
}

/// Mark `id` finished (recording its panic, if any), wake joiners, and
/// hand the baton to the next thread.
fn finish(id: usize, panic_msg: Option<String>) {
    let mut st = lock_state();
    let Some(ex) = st.as_mut() else { return };
    ex.threads[id].state = ThState::Finished;
    ex.threads[id].yielded = false;
    ex.running -= 1;
    if let Some(msg) = panic_msg {
        ex.fail(msg);
    }
    for t in &mut ex.threads {
        if t.state == ThState::Blocked(id) {
            t.state = ThState::Runnable;
        }
    }
    if ex.running > 0 {
        ex.schedule();
    }
    CV.notify_all();
}

/// Body of the root model thread (id 0): run the model closure, record
/// the outcome, release the baton.
pub(crate) fn run_root<F: FnOnce()>(f: F) {
    TID.with(|t| t.set(Some(0)));
    let out = std::panic::catch_unwind(AssertUnwindSafe(f));
    let msg = out.err().map(|p| payload_msg(p.as_ref()));
    finish(0, msg);
}

/// Body of a spawned model thread: wait to be scheduled for the first
/// time, run, store the result where `join` will find it, finish.
pub(crate) fn run_child<T, F>(
    id: usize,
    f: F,
    slot: std::sync::Arc<Mutex<Option<std::thread::Result<T>>>>,
) where
    F: FnOnce() -> T,
{
    TID.with(|t| t.set(Some(id)));
    {
        let st = lock_state();
        let st = wait_active(st, id);
        drop(st);
    }
    let out = std::panic::catch_unwind(AssertUnwindSafe(f));
    let msg = out.as_ref().err().map(|p| payload_msg(p.as_ref()));
    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    finish(id, msg);
}

/// Block model thread `me` until model thread `target` finishes.
pub(crate) fn join_model_thread(me: usize, target: usize) {
    let mut st = lock_state();
    let Some(ex) = st.as_mut() else { return };
    if ex.threads[target].state == ThState::Finished {
        return;
    }
    ex.threads[me].state = ThState::Blocked(target);
    ex.schedule();
    CV.notify_all();
    let st = wait_active(st, me);
    drop(st);
}

/// Backtracking: produce the next schedule to explore, or `None` when the
/// (preemption-bounded) space is exhausted. Pops decisions from the end
/// until one has an untried alternative that fits the preemption budget.
pub(crate) fn next_path(mut path: Vec<Decision>, bound: usize) -> Option<Vec<Decision>> {
    loop {
        let last = path.pop()?;
        let used: usize = path.iter().filter(|d| d.is_preemption()).count();
        let mut c = last.chosen + 1;
        while c < last.runnable.len() {
            let cost = match last.active_was {
                Some(ai) => usize::from(c != ai),
                None => 0,
            };
            if used + cost <= bound {
                path.push(Decision {
                    runnable: last.runnable,
                    chosen: c,
                    active_was: last.active_was,
                });
                return Some(path);
            }
            c += 1;
        }
    }
}
