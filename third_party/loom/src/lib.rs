//! Offline stand-in for the `loom` model checker (0.7 API subset).
//!
//! The build container has no crates.io access, so — like `rand`,
//! `proptest`, `criterion` and `crossbeam-epoch` in this workspace — the
//! verification layer vendors a minimal, API-compatible implementation of
//! the part of loom that `hot-core`'s ROWEX models actually use:
//! [`model`], [`Builder`], [`thread::spawn`]/[`thread::JoinHandle`],
//! [`thread::yield_now`], and the [`sync::atomic`] integer types.
//!
//! # What it checks (and what it does not)
//!
//! A model run executes the closure under a **cooperative scheduler**:
//! exactly one model thread runs at a time, every atomic operation is a
//! *yield point*, and the scheduler systematically enumerates scheduling
//! decisions depth-first across repeated executions, bounded by a CHESS
//! style **preemption bound** (default 2: schedules containing at most two
//! involuntary context switches — the empirically useful prefix of the
//! interleaving space). Each schedule runs the program's atomics at
//! `SeqCst`, so the tool explores **interleavings under sequentially
//! consistent semantics**. That catches lost updates, broken lock
//! protocols, ABA-style races, ordering assumptions between *operations*,
//! and use-after-free of logically retired nodes — the bug classes the
//! ROWEX protocol is most exposed to.
//!
//! It does **not** model C11 weak memory: a schedule never reorders the
//! effects of a single thread, so bugs that require an `Acquire`/`Release`
//! pair to be weakened to `Relaxed` are invisible here. Those are covered
//! by the Miri and ThreadSanitizer CI jobs (see DESIGN.md §10); the real
//! loom crate would cover them too, and this stand-in keeps its API so the
//! models port over unchanged.
//!
//! # Why `#[repr(transparent)]` atomics
//!
//! `hot-core` conjures `&AtomicU32` lock-word references from raw node
//! memory (`RawNode::lock_word`). Real loom atomics carry per-cell version
//! state and cannot be materialized from a plain integer in memory. The
//! stand-in therefore guarantees every `loom::sync::atomic` type is a
//! `#[repr(transparent)]` wrapper over the matching `std` atomic — all
//! model bookkeeping lives in the global scheduler, none in the cell — so
//! the cast stays valid in both build modes.
//!
//! # Scheduler mechanics
//!
//! Model threads are real OS threads serialized by a `Mutex`/`Condvar`
//! baton: only the thread the scheduler marked *active* may leave
//! [`sched::yield_point`]. At each yield point with more than one runnable
//! candidate the scheduler either replays a recorded decision (exploration
//! is deterministic) or extends the current schedule with the default
//! "keep running the active thread" choice, recording the alternatives.
//! After the run, the driver backtracks the last decision with an untried
//! alternative that fits the preemption budget and re-executes. A thread
//! that calls [`thread::yield_now`] is deprioritized until every other
//! runnable thread has had a chance (this bounds spin/retry loops), and a
//! global step limit turns genuine livelock into a model failure with a
//! schedule trace rather than a hang.

#![deny(missing_docs)]

use std::sync::Arc as StdArc;
use std::sync::Mutex as StdMutex;

mod sched;

pub mod model {
    //! Model entry points: [`model`](crate::model()) and [`Builder`].

    use super::*;
    use crate::sched::{self, Decision, Exec};

    /// Serializes model runs: the scheduler state is global, so two
    /// `#[test]`s must not explore concurrently.
    static MODEL_LOCK: StdMutex<()> = StdMutex::new(());

    /// Configuration for a model run (subset of loom's `Builder`).
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum number of involuntary context switches per schedule
        /// (CHESS-style preemption bounding). `None` means unbounded,
        /// which is only tractable for tiny models.
        pub preemption_bound: Option<usize>,
        /// Cap on explored schedules; exploration stops (with a note on
        /// stderr) when it is hit. 0 means "no cap".
        pub max_iterations: u64,
        /// Cap on scheduling steps within one schedule; exceeding it fails
        /// the model (livelock guard).
        pub max_steps: u64,
        /// Print a one-line summary after a successful run.
        pub log: bool,
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Builder {
        /// Default configuration; honours `LOOM_MAX_PREEMPTIONS`,
        /// `LOOM_MAX_ITERATIONS` and `LOOM_MAX_STEPS` env overrides like
        /// the real crate honours its `LOOM_*` variables.
        pub fn new() -> Self {
            fn env(name: &str) -> Option<u64> {
                std::env::var(name).ok()?.parse().ok()
            }
            Builder {
                preemption_bound: Some(env("LOOM_MAX_PREEMPTIONS").map_or(2, |v| v as usize)),
                max_iterations: env("LOOM_MAX_ITERATIONS").unwrap_or(200_000),
                max_steps: env("LOOM_MAX_STEPS").unwrap_or(2_000_000),
                log: std::env::var("LOOM_LOG").is_ok(),
            }
        }

        /// Exhaustively (within the preemption bound) check `f` across
        /// thread interleavings. Panics — with the failing schedule on
        /// stderr — if any explored schedule panics or deadlocks.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let f = StdArc::new(f);
            let bound = self.preemption_bound.unwrap_or(usize::MAX);
            let mut path: Vec<Decision> = Vec::new();
            let mut iterations: u64 = 0;
            loop {
                iterations += 1;
                sched::install(Exec::new(std::mem::take(&mut path), bound, self.max_steps));
                let body = StdArc::clone(&f);
                let root = std::thread::spawn(move || sched::run_root(move || body()));
                sched::wait_model_done();
                let ex = sched::take_exec();
                let _ = root.join();
                if let Some(msg) = ex.panic {
                    eprintln!(
                        "loom: model failed on schedule #{iterations}\nloom: failing schedule: {}",
                        ex.failing_trace.unwrap_or_default()
                    );
                    panic!("{}", msg);
                }
                match sched::next_path(ex.path, bound) {
                    Some(p) => {
                        if self.max_iterations != 0 && iterations >= self.max_iterations {
                            eprintln!("loom: exploration capped at {iterations} schedules");
                            break;
                        }
                        path = p;
                    }
                    None => break,
                }
            }
            if self.log {
                eprintln!("loom: explored {iterations} schedule(s), all passed");
            }
        }
    }
}

pub use model::Builder;

/// Run `f` under the model checker with the default [`Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Number of schedules the default [`Builder`] would explore for `f`.
///
/// Convenience for the stand-in's own tests; not part of the real loom API.
pub fn explore_count<F>(f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    let count = StdArc::new(AtomicU64::new(0));
    let c = StdArc::clone(&count);
    Builder::new().check(move || {
        c.fetch_add(1, Ordering::Relaxed);
        f();
    });
    count.load(Ordering::Relaxed)
}

pub mod thread {
    //! Model-aware threads. Outside a model run these degrade to plain
    //! `std::thread` so code compiled with the loom feature still works in
    //! ordinary tests.

    use super::*;
    use crate::sched;

    /// Handle to a spawned model (or OS) thread.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    enum Inner<T> {
        Os(std::thread::JoinHandle<T>),
        Model {
            id: usize,
            result: StdArc<StdMutex<Option<std::thread::Result<T>>>>,
            os: Option<std::thread::JoinHandle<()>>,
        },
    }

    /// Spawn a thread. Inside a model run the thread is registered with
    /// the scheduler and only runs when scheduled; outside, this is
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(me) = sched::current_tid() else {
            return JoinHandle {
                inner: Inner::Os(std::thread::spawn(f)),
            };
        };
        let id = sched::register_thread();
        let result = StdArc::new(StdMutex::new(None));
        let slot = StdArc::clone(&result);
        let os = std::thread::spawn(move || {
            sched::run_child(id, f, slot);
        });
        // The child is now runnable: give the scheduler a chance to
        // preempt the parent right at the spawn boundary.
        sched::yield_point(me, false);
        JoinHandle {
            inner: Inner::Model {
                id,
                result,
                os: Some(os),
            },
        }
    }

    /// Voluntarily cede the processor. Inside a model the calling thread
    /// is deprioritized until other runnable threads have run (this is
    /// what keeps `try_lock` retry loops from livelocking the model).
    pub fn yield_now() {
        match sched::current_tid() {
            Some(me) => sched::yield_point(me, true),
            None => std::thread::yield_now(),
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its value, propagating
        /// its panic like `std::thread::JoinHandle::join().unwrap()` — the
        /// model treats any thread panic as a failed schedule anyway.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Os(h) => h.join(),
                Inner::Model { id, result, os } => {
                    if let Some(me) = sched::current_tid() {
                        sched::join_model_thread(me, id);
                    }
                    if let Some(h) = os {
                        let _ = h.join();
                    }
                    let out = result
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("model thread finished without storing a result");
                    Ok(match out {
                        Ok(v) => v,
                        Err(p) => std::panic::resume_unwind(p),
                    })
                }
            }
        }
    }
}

pub mod sync {
    //! Synchronization primitives (model-aware atomics plus `Arc`).

    /// Plain `std::sync::Arc`: reference counting needs no exploration —
    //  only the data races *through* it matter, and those go via atomics.
    pub use std::sync::Arc;

    pub mod atomic {
        //! Model-aware atomics. `#[repr(transparent)]` over the `std`
        //! types so references to them may be conjured from raw memory
        //! exactly as with `std` atomics (see the crate docs).

        pub use std::sync::atomic::Ordering;

        use crate::sched;

        /// Issue a scheduler yield point; the fence itself is subsumed by
        /// running every atomic at `SeqCst`.
        pub fn fence(_order: Ordering) {
            if let Some(me) = sched::current_tid() {
                sched::yield_point(me, false);
            }
        }

        macro_rules! model_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
                $(#[$doc])*
                #[repr(transparent)]
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// New atomic holding `v`.
                    pub const fn new(v: $prim) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    fn hit(&self) {
                        if let Some(me) = sched::current_tid() {
                            sched::yield_point(me, false);
                        }
                    }

                    /// Model-aware load (runs at `SeqCst`).
                    pub fn load(&self, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Model-aware store (runs at `SeqCst`).
                    pub fn store(&self, v: $prim, _order: Ordering) {
                        self.hit();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Model-aware swap.
                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Model-aware strong compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.hit();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Weak compare-exchange; deterministic (never spuriously
                    /// fails) so schedules replay exactly.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Model-aware `fetch_add`.
                    pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Model-aware `fetch_sub`.
                    pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }

                    /// Model-aware `fetch_or`.
                    pub fn fetch_or(&self, v: $prim, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.fetch_or(v, Ordering::SeqCst)
                    }

                    /// Model-aware `fetch_and`.
                    pub fn fetch_and(&self, v: $prim, _order: Ordering) -> $prim {
                        self.hit();
                        self.0.fetch_and(v, Ordering::SeqCst)
                    }
                }
            };
        }

        model_atomic!(
            /// Model-aware `AtomicU32`.
            AtomicU32, AtomicU32, u32
        );
        model_atomic!(
            /// Model-aware `AtomicU64`.
            AtomicU64, AtomicU64, u64
        );
        model_atomic!(
            /// Model-aware `AtomicUsize`.
            AtomicUsize, AtomicUsize, usize
        );

        /// Model-aware `AtomicBool` (same shape as the integer atomics,
        /// minus the arithmetic fetch ops).
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// New atomic holding `v`.
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            fn hit(&self) {
                if let Some(me) = sched::current_tid() {
                    sched::yield_point(me, false);
                }
            }

            /// Model-aware load (runs at `SeqCst`).
            pub fn load(&self, _order: Ordering) -> bool {
                self.hit();
                self.0.load(Ordering::SeqCst)
            }

            /// Model-aware store (runs at `SeqCst`).
            pub fn store(&self, v: bool, _order: Ordering) {
                self.hit();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Model-aware swap.
            pub fn swap(&self, v: bool, _order: Ordering) -> bool {
                self.hit();
                self.0.swap(v, Ordering::SeqCst)
            }
        }
    }
}

pub mod hint {
    //! Spin-loop hint mapped to a voluntary yield so busy-wait loops make
    //! progress visible to the scheduler instead of monopolizing it.

    /// Model-aware `std::hint::spin_loop`.
    pub fn spin_loop() {
        match crate::sched::current_tid() {
            Some(me) => crate::sched::yield_point(me, true),
            None => std::hint::spin_loop(),
        }
    }
}
