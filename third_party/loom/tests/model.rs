//! Self-tests for the vendored loom stand-in: the explorer must find
//! known races, must not report impossible (non-SC) outcomes, and must
//! terminate on yield-based retry loops.

use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use loom::sync::Arc;
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

/// Two unsynchronized load-then-store increments: the classic lost
/// update. Exploration must surface both the race outcome (1) and the
/// serialized outcome (2).
#[test]
fn finds_lost_update() {
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let seen = Arc::clone(&outcomes);
    loom::model(move || {
        let a = Arc::new(AtomicU32::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        seen.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    let outcomes = outcomes.lock().unwrap();
    assert!(outcomes.contains(&1), "lost-update schedule not explored");
    assert!(outcomes.contains(&2), "serialized schedule not explored");
}

/// The same racy counter, now asserting the wrong thing inside the model:
/// the checker must fail and surface the panic.
#[test]
#[should_panic(expected = "lost update")]
fn reports_failing_schedule() {
    loom::model(|| {
        let a = Arc::new(AtomicU32::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
}

/// CAS-retry counter: correct under every schedule.
#[test]
fn cas_counter_is_race_free() {
    loom::model(|| {
        let a = Arc::new(AtomicU32::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || loop {
                    let v = a.load(Ordering::Acquire);
                    if a.compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                    loom::thread::yield_now();
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
}

/// Store-buffering litmus test: under the stand-in's sequentially
/// consistent semantics, both loads reading 0 is impossible, and the
/// explorer must still visit several distinct outcomes.
#[test]
fn store_buffering_is_sequentially_consistent() {
    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let seen = Arc::clone(&outcomes);
    loom::model(move || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = loom::thread::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = loom::thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            !(r1 == 0 && r2 == 0),
            "store buffering observed under SC semantics"
        );
        seen.lock().unwrap().insert((r1, r2));
    });
    let n = outcomes.lock().unwrap().len();
    assert!(n >= 3, "expected >=3 interleaving outcomes, saw {n}");
}

/// Spin-wait on a flag with `yield_now`: the yield deprioritization must
/// let the setter run, so the model terminates.
#[test]
fn yield_loop_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let waiter = loom::thread::spawn(move || {
            while !f.load(Ordering::Acquire) {
                loom::thread::yield_now();
            }
        });
        flag.store(true, Ordering::Release);
        waiter.join().unwrap();
    });
}

/// Join must pass the child's return value through.
#[test]
fn join_returns_value() {
    loom::model(|| {
        let h = loom::thread::spawn(|| 42_usize);
        assert_eq!(h.join().unwrap(), 42);
    });
}

/// A simple spinlock built from the same primitives as the HOT lock word:
/// mutual exclusion must hold in every schedule.
#[test]
fn test_and_set_lock_excludes() {
    loom::model(|| {
        let lock = Arc::new(AtomicU32::new(0));
        let shared = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                loom::thread::spawn(move || {
                    loop {
                        let cur = lock.load(Ordering::Relaxed);
                        if cur & 1 == 0
                            && lock
                                .compare_exchange(cur, cur | 1, Ordering::Acquire, Ordering::Relaxed)
                                .is_ok()
                        {
                            break;
                        }
                        loom::thread::yield_now();
                    }
                    // Critical section: a plain read-modify-write would race
                    // without the lock; with it, no increment may be lost.
                    let v = shared.load(Ordering::Relaxed);
                    shared.store(v + 1, Ordering::Relaxed);
                    lock.fetch_and(!1, Ordering::Release);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(shared.load(Ordering::SeqCst), 2);
    });
}

/// Exploration is deterministic and bounded: the same model explores the
/// same number of schedules twice in a row.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        loom::explore_count(|| {
            let a = Arc::new(AtomicU32::new(0));
            let b = Arc::clone(&a);
            let h = loom::thread::spawn(move || {
                b.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        })
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "exploration must be deterministic");
    assert!(a >= 2, "expected >1 schedule for a 2-thread model, got {a}");
}
