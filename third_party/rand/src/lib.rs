//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of the rand 0.8 interface it actually uses:
//!
//! * [`rngs::StdRng`] — here a xoshiro256++ generator (rand's real `StdRng`
//!   is ChaCha12; both are deterministic per seed, and nothing in this
//!   workspace depends on the exact stream, only on reproducibility);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges), [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Distribution quality: integers are mapped into ranges with Lemire's
//! widening-multiply method (no modulo bias); `f64` uses the standard
//! 53-bit mantissa construction in `[0, 1)`.

// Vendored stand-in crate: linted like third-party code, not workspace code.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from `range` (e.g. `0..n` or `1..=6`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded through SplitMix64 (the standard
    /// recipe for seeding xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step — full-period, used only for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard distribution: all values of the type equally likely
/// (for floats: uniform in `[0, 1)`).
pub struct Standard;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // A single widening multiply has bias < 2^-64 per sample for the bounds
    // used in this workspace (dataset sizes, fanouts) — far below anything a
    // statistical test here could observe, so no rejection loop.
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard.sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator used wherever the workspace asks for rand's
    /// `StdRng`: xoshiro256++ (Blackman & Vigna), 2^256 − 1 period.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero is the one forbidden xoshiro state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0u8..=255);
            let _ = z;
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 buckets hit: {seen:?}");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
