//! Offline stand-in for the `crossbeam-epoch` crate (0.9 API subset).
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal implementation of the epoch-based-reclamation surface that
//! `hot-core::sync` actually uses: [`pin`], [`Guard`], and
//! [`Guard::defer_unchecked`]. The implementation favours simplicity and
//! obvious correctness over scalability:
//!
//! * Every [`pin`] draws a monotonically increasing **ticket** from a global
//!   registry and records it as active; dropping the guard removes it.
//! * [`Guard::defer_unchecked`] stamps the closure with the *next* ticket
//!   value. A deferred closure may run only once every guard whose ticket is
//!   smaller than that stamp has been dropped — exactly the grace-period
//!   condition of epoch reclamation (all threads that could hold a snapshot
//!   of the retired pointer have since unpinned).
//! * Garbage is drained by whichever thread drops a guard after the grace
//!   period elapses, outside the registry lock. When the last guard drops,
//!   all pending garbage runs, so quiescent states free everything — tests
//!   that compare memory counters after the fact observe exact counts.
//!
//! A single `Mutex` serializes registry bookkeeping. That is a scalability
//! compromise (real crossbeam uses per-thread epochs precisely to avoid it),
//! but it is semantically sound: the lock only orders ticket bookkeeping,
//! while the deferred destructors themselves still run without any lock
//! held. On this workspace's hot paths a pin is amortized over a whole
//! operation (or a whole batch), so the lock is not a measurable bottleneck
//! below ~10 threads.

// Vendored stand-in crate: linted like third-party code, not workspace code.
#![allow(clippy::all)]

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A deferred destructor plus the ticket it must wait out.
struct Bag {
    stamp: u64,
    run: Deferred,
}

/// Type-erased `FnOnce` that is forced `Send`.
///
/// `defer_unchecked` is `unsafe` precisely because the caller promises the
/// closure may run on another thread at a later time; we inherit that
/// contract rather than checking it.
struct Deferred(Box<dyn FnOnce()>);
// SAFETY: see above — the `defer_unchecked` caller promises the closure
// is safe to run from whichever thread later flushes the garbage.
unsafe impl Send for Deferred {}

#[derive(Default)]
struct Registry {
    /// Next ticket to hand out; also serves as the "current time" stamp.
    next_ticket: u64,
    /// Tickets of live guards (BTreeMap so the minimum is O(log n)).
    active: BTreeMap<u64, ()>,
    /// Deferred destructors, FIFO by stamp.
    garbage: Vec<Bag>,
}

impl Registry {
    /// Remove and return every bag whose grace period has elapsed.
    fn reclaimable(&mut self) -> Vec<Deferred> {
        let horizon = match self.active.keys().next() {
            Some(&min) => min,
            // No guard is live: everything deferred so far is safe to run.
            None => u64::MAX,
        };
        let mut ready = Vec::new();
        self.garbage.retain_mut(|bag| {
            if bag.stamp <= horizon {
                ready.push(Deferred(std::mem::replace(
                    &mut bag.run.0,
                    Box::new(|| ()),
                )));
                false
            } else {
                true
            }
        });
        ready
    }
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        next_ticket: 0,
        active: BTreeMap::new(),
        garbage: Vec::new(),
    });
    &REGISTRY
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // Keep reclaiming even if a test thread panicked while pinned.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Pin the current thread, keeping retired memory alive until the returned
/// guard is dropped.
pub fn pin() -> Guard {
    let mut reg = lock();
    let ticket = reg.next_ticket;
    reg.next_ticket += 1;
    reg.active.insert(ticket, ());
    Guard { ticket }
}

/// A pinned scope. Memory retired while any guard is live stays valid until
/// every guard that might have observed it unpins.
pub struct Guard {
    ticket: u64,
}

impl Guard {
    /// Defer `f` until after the current grace period.
    ///
    /// # Safety
    /// The caller must guarantee `f` (and the data it closes over) is safe
    /// to invoke on any thread once all currently-pinned threads unpin —
    /// the same contract as crossbeam's `defer_unchecked`.
    pub unsafe fn defer_unchecked<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
    {
        let boxed: Box<dyn FnOnce() + '_> = Box::new(move || {
            f();
        });
        // SAFETY: the transmute only erases the lifetime; the caller's
        // contract is precisely that the closure stays valid until the
        // grace period elapses.
        let boxed: Box<dyn FnOnce()> = unsafe { std::mem::transmute(boxed) };
        let mut reg = lock();
        // Stamp with the *next* ticket: every currently-live guard holds a
        // strictly smaller ticket, so `stamp <= min(active)` implies they
        // have all been dropped.
        let stamp = reg.next_ticket;
        reg.garbage.push(Bag {
            stamp,
            run: Deferred(boxed),
        });
    }

    /// Eagerly attempt reclamation (crossbeam parity; also used by tests).
    pub fn flush(&self) {
        let ready = lock().reclaimable();
        drop_all(ready);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let ready = {
            let mut reg = lock();
            reg.active.remove(&self.ticket);
            reg.reclaimable()
        };
        drop_all(ready);
    }
}

/// Run deferred destructors with no lock held, so they may pin again or
/// retire more memory without deadlocking.
fn drop_all(ready: Vec<Deferred>) {
    for d in ready {
        (d.0)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn deferred_runs_only_after_all_guards_drop() {
        let hits = Arc::new(AtomicUsize::new(0));
        let outer = pin();
        {
            let inner = pin();
            let h = Arc::clone(&hits);
            // SAFETY: the closure owns its captures and touches no shared state
            // beyond an atomic counter; safe to run from any thread at any time.
            unsafe { inner.defer_unchecked(move || h.fetch_add(1, Ordering::SeqCst)) };
            drop(inner);
            // `outer` was pinned before the defer, so it must hold it back.
            assert_eq!(hits.load(Ordering::SeqCst), 0);
        }
        drop(outer);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unrelated_later_guard_does_not_block_reclamation() {
        let hits = Arc::new(AtomicUsize::new(0));
        let g = pin();
        let h = Arc::clone(&hits);
        // SAFETY: the closure owns its captures and touches no shared state
        // beyond an atomic counter; safe to run from any thread at any time.
        unsafe { g.defer_unchecked(move || h.fetch_add(1, Ordering::SeqCst)) };
        let late = pin(); // pinned after the defer: may not observe the garbage
        drop(g);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        drop(late);
    }

    #[test]
    fn quiescent_state_flushes_everything() {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let g = pin();
            let h = Arc::clone(&hits);
            // SAFETY: the closure owns its captures and touches no shared state
            // beyond an atomic counter; safe to run from any thread at any time.
            unsafe { g.defer_unchecked(move || h.fetch_add(1, Ordering::SeqCst)) };
        }
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn concurrent_pin_defer_stress() {
        let hits = Arc::new(AtomicUsize::new(0));
        let n = 8;
        let per = 500;
        std::thread::scope(|s| {
            for _ in 0..n {
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..per {
                        let g = pin();
                        let h = Arc::clone(&hits);
                        // SAFETY: the closure owns its captures and touches no shared state
                        // beyond an atomic counter; safe to run from any thread at any time.
                        unsafe { g.defer_unchecked(move || h.fetch_add(1, Ordering::SeqCst)) };
                    }
                });
            }
        });
        // All threads quiesced: every deferred closure must have run.
        let g = pin();
        g.flush();
        drop(g);
        assert_eq!(hits.load(Ordering::SeqCst), n * per);
    }
}
