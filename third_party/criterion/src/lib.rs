//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! benchmarking surface its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::throughput`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each bench is calibrated by doubling the iteration
//! count until one sample takes ≥ `HOT_BENCH_MIN_SAMPLE_MS` (default 25 ms),
//! then `sample_size` samples are timed. We report min / median / mean —
//! the *median* is the robust figure to quote. No warmup loop beyond
//! calibration, no outlier analysis, no HTML reports; numbers print to
//! stdout in a greppable one-line-per-bench format:
//!
//! ```text
//! bench group/name ... min 123.4ns median 125.1ns mean 125.9ns (N samples x M iters)
//! ```
//!
//! The driver accepts (and ignores) the CLI arguments `cargo bench` passes,
//! and honours a single positional filter substring, so
//! `cargo bench --bench batch_ops -- url` runs only matching benches.

// Vendored stand-in crate: linted like third-party code, not workspace code.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Identity function that defeats constant folding (re-export of the
/// standard library's hint, which is what criterion 0.5 uses internally).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted for API parity; not printed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`] (accepted for API parity;
/// this stand-in always runs one routine call per setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Input is small; real criterion would batch many per allocation.
    SmallInput,
    /// Input is large; real criterion batches few.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` / `cargo bench -- --bench <filter>`:
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Record the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `f`, called in calibrated batches.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let min_sample = Duration::from_millis(
            std::env::var("HOT_BENCH_MIN_SAMPLE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(25),
        );
        // Calibrate: double until one batch is long enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Self::time_batch(&mut f, iters);
            if t >= min_sample || iters >= 1 << 30 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            self.samples.push(Self::time_batch(&mut f, iters));
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time and the
    /// drop of the routine's output stay outside the timed region. Each
    /// sample is a single routine call (whole-structure builds and similar
    /// heavyweight routines are what this entry point exists for, so no
    /// iteration-count calibration is needed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            self.samples.push(start.elapsed());
            drop(output);
        }
    }

    fn time_batch<O, F: FnMut() -> O>(f: &mut F, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean: f64 = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "bench {id} ... min {} median {} mean {} ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Bundle benchmark functions into a single named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("HOT_BENCH_MIN_SAMPLE_MS", "1");
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0, "closure executed");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            default_sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("something-else", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran, "filtered bench must not run");
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("us"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
