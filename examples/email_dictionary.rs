//! A string-intensive scenario from the paper's introduction: indexing a
//! large set of email addresses, with prefix (domain-style) range queries —
//! the kind of workload where HOT's adaptive span shines.
//!
//! Compares HOT against the binary Patricia trie on the same data to show
//! the height-optimization effect, then runs autocomplete-style scans.
//!
//! ```text
//! cargo run --release --example email_dictionary
//! ```

use hot_core::HotTrie;
use hot_keys::str_key;
use hot_patricia::PatriciaTree;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

fn main() {
    let n = 200_000;
    println!("generating {n} synthetic email addresses…");
    let data = hot_bench::BenchData::new(Dataset::generate(DatasetKind::Email, n, 2026));

    let mut hot = HotTrie::new(Arc::clone(&data.arena));
    let mut patricia = PatriciaTree::new(Arc::clone(&data.arena));
    for i in 0..n {
        hot.insert(&data.dataset.keys[i], data.tids[i]);
        patricia.insert(&data.dataset.keys[i], data.tids[i]);
    }

    let hot_depth = hot.depth_stats();
    let bin_depth = patricia.depth_stats();
    println!(
        "HOT:      {} keys | mean leaf depth {:.2} | height {} | {:.1} bytes/key",
        hot.len(),
        hot_depth.mean_depth(),
        hot.height(),
        hot.memory_stats().bytes_per_key(),
    );
    println!(
        "Patricia: {} keys | mean leaf depth {:.2} | height {}",
        patricia.len(),
        bin_depth.mean_depth(),
        bin_depth.max_depth().unwrap_or(0),
    );

    // Autocomplete: the 5 first addresses per prefix.
    println!("\nautocomplete:");
    for prefix in ["amanda", "james.s", "9"] {
        // A bare prefix (no terminator) sorts before all its completions.
        let matches: Vec<String> = hot
            .range_from(prefix.as_bytes())
            .take(5)
            .map(|tid| {
                let key = data.arena.key(tid);
                String::from_utf8_lossy(&key[..key.len() - 1]).into_owned()
            })
            .take_while(|addr| addr.starts_with(prefix))
            .collect();
        println!("  {prefix}* -> {matches:?}");
    }

    // Point lookups stay exact despite the Patricia-style blind descent.
    let probe = str_key(b"no.such.address@nowhere.example").unwrap();
    assert_eq!(hot.get(&probe), None);
    let known = &data.dataset.keys[n / 2];
    assert_eq!(hot.get(known), Some(data.tids[n / 2]));
    println!("\nlookup of a stored address found its TID; unknown address missed cleanly.");
}
