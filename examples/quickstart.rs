//! Quickstart: the three ways to use HOT.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hot_core::sync::ConcurrentHot;
use hot_core::{HotMap, HotTrie};
use hot_keys::{encode_u64, str_key, EmbeddedKeySource};
use std::sync::Arc;

fn main() {
    // ── 1. HotMap: a self-contained ordered map ────────────────────────────
    // Keys are byte strings; use the prefix-free encoders for strings.
    let mut map = HotMap::new();
    map.insert(&str_key(b"vienna").unwrap(), 1_897_000u64);
    map.insert(&str_key(b"innsbruck").unwrap(), 132_000);
    map.insert(&str_key(b"munich").unwrap(), 1_488_000);
    map.insert(&str_key(b"graz").unwrap(), 291_000);

    println!("population of graz: {:?}", map.get(&str_key(b"graz").unwrap()));
    println!("cities from 'i' onward:");
    for (key, pop) in map.range_from(&str_key(b"i").unwrap()) {
        let name = std::str::from_utf8(&key[..key.len() - 1]).unwrap();
        println!("  {name}: {pop}");
    }

    // ── 2. HotTrie: the paper-style TID index ──────────────────────────────
    // The index stores only discriminative bits; integer keys up to 63 bits
    // are embedded directly in the TID, so the index is all there is.
    let mut trie = HotTrie::new(EmbeddedKeySource);
    for value in [42u64, 7, 1 << 40, 123_456_789] {
        trie.insert(&encode_u64(value), value);
    }
    assert_eq!(trie.get(&encode_u64(7)), Some(7));
    assert_eq!(trie.get(&encode_u64(8)), None);
    println!(
        "\ninteger index: {} keys in {} bytes ({:.1} bytes/key), height {}",
        trie.len(),
        trie.memory_stats().total_bytes(),
        trie.memory_stats().bytes_per_key(),
        trie.height(),
    );
    let ordered: Vec<u64> = trie.iter().collect();
    println!("in key order: {ordered:?}");

    // Batched lookups: resolve independent keys in groups so their cache
    // misses overlap (memory-level parallelism). Results are identical to
    // scalar `get`, one slot per key.
    let probes: Vec<[u8; 8]> = [42u64, 8, 1 << 40, 5].iter().map(|&v| encode_u64(v)).collect();
    let mut found = vec![None; probes.len()];
    trie.get_batch(&probes, &mut found);
    println!("batched lookups: {found:?}");
    assert_eq!(found, vec![Some(42), None, Some(1 << 40), None]);

    // Range scans: `scan` allocates per call; a reused `ScanCursor` +
    // output buffer makes the steady state allocation-free, and
    // `scan_batch_with` overlaps the seek descents of a whole group
    // (results land flat, delimited by prefix offsets in `bounds`).
    let mut cursor = hot_core::ScanCursor::new();
    let mut run = Vec::new();
    trie.scan_with(&encode_u64(8), 2, &mut run, &mut cursor);
    println!("scan from 8, limit 2: {run:?}");
    assert_eq!(run, vec![42, 123_456_789]);
    let requests = [(encode_u64(0), 2), (encode_u64(100), 10)];
    let (mut tids, mut bounds) = (Vec::new(), Vec::new());
    trie.scan_batch_with(&requests, &mut tids, &mut bounds, &mut hot_core::ScanBatchCursor::new());
    assert_eq!(tids[bounds[0]..bounds[1]], [7, 42]);
    assert_eq!(tids[bounds[1]..bounds[2]], [123_456_789, 1 << 40]);

    // Bulk loading: a sorted key set builds bottom-up in one pass — every
    // node encoded once at its final size, height provably minimal. The
    // result answers lookups exactly like the insert-loop trie. (The figure
    // harnesses expose this as `--bulk`; `bulk_load_parallel` adds worker
    // threads for large sets.)
    let sorted: Vec<([u8; 8], u64)> = (0..100_000u64).map(|v| (encode_u64(v), v)).collect();
    let mut bulk = HotTrie::new(EmbeddedKeySource);
    bulk.bulk_load(&sorted).expect("sorted entries into an empty trie");
    assert_eq!(bulk.get(&encode_u64(4242)), Some(4242));
    println!(
        "bulk-loaded index: {} keys, height {}, {:.1} bytes/key",
        bulk.len(),
        bulk.height(),
        bulk.memory_stats().bytes_per_key(),
    );

    // ── 3. ConcurrentHot: the ROWEX-synchronized index (Section 5) ─────────
    let shared = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in (t..10_000).step_by(4) {
                    shared.insert(&encode_u64(i), i);
                }
            });
        }
    });
    println!(
        "\nconcurrent index: {} keys, lookup(4242) = {:?}",
        shared.len(),
        shared.get(&encode_u64(4242))
    );
    assert_eq!(shared.len(), 10_000);
}
