//! A multi-threaded key-value workload on the ROWEX-synchronized HOT
//! (Section 5): writer threads upsert while reader threads run point
//! lookups and short scans, lock-free and wait-free for the readers.
//!
//! ```text
//! cargo run --release --example concurrent_kv
//! ```

use hot_core::sync::ConcurrentHot;
use hot_keys::{encode_u64, EmbeddedKeySource};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let trie = Arc::new(ConcurrentHot::new(EmbeddedKeySource));
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let scans = Arc::new(AtomicU64::new(0));

    // Preload a stable working set.
    for i in 0..100_000u64 {
        trie.insert(&encode_u64(i * 2), i * 2);
    }
    println!("preloaded {} even keys", trie.len());

    let started = Instant::now();
    std::thread::scope(|scope| {
        // Two writers inserting odd keys.
        for t in 0..2u64 {
            let trie = Arc::clone(&trie);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            scope.spawn(move || {
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let key = i * 2 + 1;
                    trie.insert(&encode_u64(key), key);
                    writes.fetch_add(1, Ordering::Relaxed);
                    i += 2;
                }
            });
        }
        // Two readers: every preloaded even key must always be found.
        for t in 0..2u64 {
            let trie = Arc::clone(&trie);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut x = 0x9E37_79B9u64 ^ t;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = (x % 100_000) * 2;
                    assert_eq!(trie.get(&encode_u64(key)), Some(key));
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // One scanner: ordered windows while the tree morphs underneath.
        {
            let trie = Arc::clone(&trie);
            let stop = Arc::clone(&stop);
            let scans = Arc::clone(&scans);
            scope.spawn(move || {
                let mut x = 12345u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let start = x % 200_000;
                    let window = trie.scan(&encode_u64(start), 50);
                    // Scans must come back sorted.
                    assert!(window.windows(2).all(|w| w[0] < w[1]));
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        std::thread::sleep(Duration::from_millis(750));
        stop.store(true, Ordering::Relaxed);
    });

    let secs = started.elapsed().as_secs_f64();
    println!(
        "in {:.2}s: {} reads, {} writes, {} scans ({:.2} Mops combined)",
        secs,
        reads.load(Ordering::Relaxed),
        writes.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed),
        (reads.load(Ordering::Relaxed) + writes.load(Ordering::Relaxed)) as f64 / secs / 1e6,
    );
    println!("final size: {} keys — validating structure…", trie.len());
    trie.validate();
    println!("structure valid ✓");
}
