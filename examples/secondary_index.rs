//! HOT as a main-memory DBMS secondary index — the paper's core use case:
//! the index maps keys to tuple identifiers, the tuples live in a table,
//! and the index resolves full keys from TIDs (Listing 2, line 7).
//!
//! Models an `orders` table with a primary store and a HOT secondary index
//! over a composite `(customer_id, order_date)` key, answering "all orders
//! of customer X since date D" with one range scan.
//!
//! ```text
//! cargo run --release --example secondary_index
//! ```

use hot_core::HotTrie;
use hot_keys::{KeySource, KEY_SCRATCH_LEN};

/// One heap tuple.
#[derive(Debug, Clone)]
struct Order {
    customer_id: u32,
    order_date: u32, // days since epoch
    amount_cents: u64,
}

/// The "table": a slotted heap; the slot number is the TID.
#[derive(Default)]
struct OrdersTable {
    tuples: Vec<Order>,
}

impl OrdersTable {
    fn insert(&mut self, order: Order) -> u64 {
        self.tuples.push(order);
        (self.tuples.len() - 1) as u64
    }

    fn composite_key(order: &Order) -> [u8; 8] {
        // Big-endian (customer_id, order_date): sorts by customer, then date.
        let mut key = [0u8; 8];
        key[..4].copy_from_slice(&order.customer_id.to_be_bytes());
        key[4..].copy_from_slice(&order.order_date.to_be_bytes());
        key
    }
}

/// The index resolves TIDs through the table — no keys stored in the index.
impl KeySource for &OrdersTable {
    fn load_key<'a>(&'a self, tid: u64, scratch: &'a mut [u8; KEY_SCRATCH_LEN]) -> &'a [u8] {
        let key = OrdersTable::composite_key(&self.tuples[tid as usize]);
        scratch[..8].copy_from_slice(&key);
        &scratch[..8]
    }
}

fn main() {
    let mut table = OrdersTable::default();
    let mut rng_state = 0x2026_0706u64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    // Load 100k orders for 1 000 customers over ~3 years.
    let mut pending: Vec<(Vec<u8>, u64)> = Vec::new();
    for _ in 0..100_000 {
        let order = Order {
            customer_id: (rand() % 1_000) as u32,
            order_date: 19_000 + (rand() % 1_100) as u32,
            amount_cents: rand() % 50_000,
        };
        let key = OrdersTable::composite_key(&order).to_vec();
        let tid = table.insert(order);
        pending.push((key, tid));
    }

    // Composite keys may collide (same customer, same day): keep the first.
    let table_ref = &table;
    let mut index = HotTrie::new(table_ref);
    let mut indexed = 0usize;
    for (key, tid) in &pending {
        if index.insert(key, *tid).is_none() {
            indexed += 1;
        }
    }
    println!(
        "indexed {indexed} distinct (customer, date) pairs in {} bytes ({:.1} B/entry), height {}",
        index.memory_stats().total_bytes(),
        index.memory_stats().bytes_per_key(),
        index.height(),
    );

    // Query: all orders of customer 500 since day 19 800.
    let customer = 500u32;
    let since = 19_800u32;
    let mut start = [0u8; 8];
    start[..4].copy_from_slice(&customer.to_be_bytes());
    start[4..].copy_from_slice(&since.to_be_bytes());

    let mut total = 0u64;
    let mut count = 0usize;
    for tid in index.range_from(&start) {
        let order = &table.tuples[tid as usize];
        if order.customer_id != customer {
            break; // left this customer's key range
        }
        total += order.amount_cents;
        count += 1;
    }
    println!(
        "customer {customer} since day {since}: {count} orders, {:.2} EUR total",
        total as f64 / 100.0
    );

    // Cross-check against a full table scan.
    let (mut check_count, mut check_total) = (0usize, 0u64);
    let mut seen = std::collections::HashSet::new();
    for order in &table.tuples {
        if order.customer_id == customer
            && order.order_date >= since
            && seen.insert(OrdersTable::composite_key(order))
        {
            check_count += 1;
            check_total += order.amount_cents;
        }
    }
    assert_eq!((count, total), (check_count, check_total));
    println!("matches the full-table-scan answer ✓");
}
