//! Cross-crate integration: all index structures must agree exactly — on
//! every data set, for point lookups, ordered iteration and range scans —
//! and the YCSB harness must drive them identically.

use hot_bench::{all_indexes, BenchData};
use hot_ycsb::{Dataset, DatasetKind, Operation, RequestDistribution, Workload, WorkloadRun};
use std::collections::BTreeMap;

const N: usize = 20_000;

#[test]
fn all_structures_agree_on_all_datasets() {
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, N, 11));
        let mut indexes = all_indexes(&data.arena);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for i in 0..N {
            for index in indexes.iter_mut() {
                index.insert(&data.dataset.keys[i], data.tids[i]);
            }
            model.insert(data.dataset.keys[i].clone(), data.tids[i]);
        }

        // Point lookups: every stored key, plus misses.
        for (i, key) in data.dataset.keys.iter().enumerate().step_by(37) {
            for index in &indexes {
                assert_eq!(
                    index.get(key),
                    Some(data.tids[i]),
                    "{} lookup on {:?}",
                    index.name(),
                    kind
                );
            }
        }
        let missing = vec![0xFEu8; 12];
        for index in &indexes {
            assert_eq!(index.get(&missing), None, "{} miss", index.name());
        }

        // Scans from random probes: identical result counts across
        // structures (contents checked against the model).
        let mut probe_sources = data.dataset.keys.iter().step_by(97);
        for probe in probe_sources.by_ref().take(30) {
            let want = model.range(probe.clone()..).take(50).count();
            for index in &indexes {
                assert_eq!(
                    index.scan(probe, 50),
                    want,
                    "{} scan from {:?} on {:?}",
                    index.name(),
                    probe,
                    kind
                );
            }
        }

        // Memory accounting sanity: every index reports a plausible
        // footprint and the right key count.
        for index in &indexes {
            let stats = index.memory();
            assert_eq!(stats.key_count, N, "{}", index.name());
            assert!(stats.node_bytes > 0, "{}", index.name());
            let bpk = stats.bytes_per_key();
            assert!(
                bpk > 1.0 && bpk < 2_000.0,
                "{} bytes/key {bpk}",
                index.name()
            );
        }
    }
}

#[test]
fn ycsb_workloads_produce_identical_effects() {
    // Run the same operation stream against every structure and the model;
    // afterwards all must contain exactly the same key set.
    let kind = DatasetKind::Email;
    for workload in Workload::ALL {
        let run = WorkloadRun::new(workload, RequestDistribution::Zipfian, N / 2, N, 13);
        let data = BenchData::new(Dataset::generate(kind, N / 2 + run.reserve_keys(), 13));
        let mut indexes = all_indexes(&data.arena);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for i in 0..N / 2 {
            for index in indexes.iter_mut() {
                index.insert(&data.dataset.keys[i], data.tids[i]);
            }
            model.insert(data.dataset.keys[i].clone(), data.tids[i]);
        }
        for op in run.operations() {
            match op {
                Operation::Read(idx) | Operation::ReadModifyWrite(idx) => {
                    let key = &data.dataset.keys[idx];
                    let want = model.get(key).copied();
                    for index in &indexes {
                        assert_eq!(index.get(key), want, "{} {workload:?}", index.name());
                    }
                }
                Operation::Update(idx) | Operation::Insert(idx) => {
                    let key = &data.dataset.keys[idx];
                    for index in indexes.iter_mut() {
                        index.insert(key, data.tids[idx]);
                    }
                    model.insert(key.clone(), data.tids[idx]);
                }
                Operation::Scan(idx, len) => {
                    let key = &data.dataset.keys[idx];
                    let want = model.range(key.clone()..).take(len).count();
                    for index in &indexes {
                        assert_eq!(index.scan(key, len), want, "{} {workload:?}", index.name());
                    }
                }
            }
        }
    }
}

#[test]
fn depth_statistics_are_consistent() {
    // Leaf counts in the depth histograms must equal the key count, for
    // every structure and data set.
    for kind in [DatasetKind::Integer, DatasetKind::Url] {
        let data = BenchData::new(Dataset::generate(kind, 5_000, 17));
        let mut indexes = all_indexes(&data.arena);
        for i in 0..5_000 {
            for index in indexes.iter_mut() {
                index.insert(&data.dataset.keys[i], data.tids[i]);
            }
        }
        for index in &indexes {
            let depth = index.depth();
            assert_eq!(depth.total(), 5_000, "{} on {:?}", index.name(), kind);
            assert!(depth.mean_depth() >= 1.0, "{}", index.name());
        }
    }
}
