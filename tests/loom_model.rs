//! Workspace-root entry point for the ROWEX loom scenarios, so the
//! acceptance command `cargo test --features loom-model` (from the repo
//! root) runs them without `-p hot-core`. The scenarios live next to the
//! code they model-check; this file just re-includes them.

#[path = "../crates/hot-core/tests/loom_rowex.rs"]
mod loom_rowex;
