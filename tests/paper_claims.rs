//! Scaled-down assertions of the paper's quantitative claims, run as tests
//! so regressions in any structure surface immediately. The full-scale
//! reproductions live in `hot-bench`'s figure binaries; these check the
//! *shape* at 20–50 k keys.

use hot_bench::BenchData;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::Arc;

/// Section 6.3: "HOT has a very stable memory footprint, which for all
/// evaluated data sets lies between 11.4 and 14.4 bytes per key." We allow
/// a slightly wider band at small scale.
#[test]
fn hot_memory_band_per_dataset() {
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, 50_000, 31));
        let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
        for i in 0..data.dataset.keys.len() {
            hot.insert(&data.dataset.keys[i], data.tids[i]);
        }
        let bpk = hot.memory_stats().bytes_per_key();
        assert!(
            (9.0..18.0).contains(&bpk),
            "{kind:?}: {bpk:.2} bytes/key outside the HOT band"
        );
    }
}

/// Section 6.3: HOT is the only trie whose footprint stays below the raw
/// key size for both textual data sets.
#[test]
fn hot_smaller_than_raw_string_keys() {
    for kind in [DatasetKind::Url, DatasetKind::Email] {
        let data = BenchData::new(Dataset::generate(kind, 50_000, 37));
        let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
        for i in 0..data.dataset.keys.len() {
            hot.insert(&data.dataset.keys[i], data.tids[i]);
        }
        assert!(
            hot.memory_stats().total_bytes() < data.dataset.raw_key_bytes(),
            "{kind:?}: index larger than raw keys"
        );
    }
}

/// Section 6.5 / Figure 11: HOT's mean leaf depth beats ART on the string
/// data sets, loses to ART on uniform integers, and is far below binary
/// Patricia everywhere.
#[test]
fn depth_ordering_matches_figure_11() {
    let n = 50_000;
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, n, 41));
        let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
        let mut art = hot_art::Art::new(Arc::clone(&data.arena));
        let mut bin = hot_patricia::PatriciaTree::new(Arc::clone(&data.arena));
        for i in 0..n {
            hot.insert(&data.dataset.keys[i], data.tids[i]);
            art.insert(&data.dataset.keys[i], data.tids[i]);
            bin.insert(&data.dataset.keys[i], data.tids[i]);
        }
        let hot_mean = hot.depth_stats().mean_depth();
        let art_mean = art.depth_stats().mean_depth();
        let bin_mean = bin.depth_stats().mean_depth();
        assert!(
            hot_mean * 2.5 < bin_mean,
            "{kind:?}: HOT {hot_mean:.2} not far below Patricia {bin_mean:.2}"
        );
        match kind {
            DatasetKind::Url | DatasetKind::Email => assert!(
                hot_mean < art_mean,
                "{kind:?}: HOT {hot_mean:.2} vs ART {art_mean:.2}"
            ),
            DatasetKind::Integer => assert!(
                art_mean < hot_mean,
                "integer: ART {art_mean:.2} should beat HOT {hot_mean:.2}"
            ),
            DatasetKind::Yago => { /* close call at small scale; no assertion */ }
        }
    }
}

/// Section 3.3: like a B-tree, "the overall height of HOT only increases
/// when a new root node is created" — check that height never jumps by
/// more than one and only grows.
#[test]
fn height_grows_monotonically_by_one() {
    let data = BenchData::new(Dataset::generate(DatasetKind::Integer, 30_000, 43));
    let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
    let mut last = 0usize;
    for i in 0..data.dataset.keys.len() {
        hot.insert(&data.dataset.keys[i], data.tids[i]);
        let h = hot.height();
        assert!(h == last || h == last + 1, "height jumped {last} -> {h}");
        last = h;
    }
}

/// Section 2 / Figure 2: a fanout-k tree over n keys cannot be shallower
/// than log_k(n); HOT must stay within one level of that optimum for the
/// uniform integer data set ("consistently high fanout").
#[test]
fn height_is_near_log32_optimal_for_integers() {
    let n = 40_000usize;
    let data = BenchData::new(Dataset::generate(DatasetKind::Integer, n, 47));
    let mut hot = hot_core::HotTrie::new(Arc::clone(&data.arena));
    for i in 0..n {
        hot.insert(&data.dataset.keys[i], data.tids[i]);
    }
    let optimal = (n as f64).log(32.0).ceil() as usize; // 4 for 40k
    assert!(
        hot.height() <= optimal + 1,
        "height {} vs optimal {optimal}",
        hot.height()
    );
}

/// The B-tree baseline's defining property (Section 6.3): its footprint is
/// independent of the key length.
#[test]
fn bt_memory_is_key_length_independent() {
    let mut per_dataset = Vec::new();
    for kind in DatasetKind::ALL {
        let data = BenchData::new(Dataset::generate(kind, 30_000, 53));
        let mut bt = hot_btree::BPlusTree::new(Arc::clone(&data.arena));
        for i in 0..data.dataset.keys.len() {
            bt.insert(&data.dataset.keys[i], data.tids[i]);
        }
        per_dataset.push(bt.memory_stats().bytes_per_key());
    }
    let min = per_dataset.iter().cloned().fold(f64::MAX, f64::min);
    let max = per_dataset.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max / min < 1.05,
        "BT bytes/key varies across data sets: {per_dataset:?}"
    );
}
