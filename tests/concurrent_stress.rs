//! Heavy concurrent stress for the ROWEX-synchronized HOT: string keys
//! through a shared arena, mixed inserts/removes/lookups/scans, full
//! validation after quiesce, and equivalence with the single-threaded trie.

use hot_bench::BenchData;
use hot_core::sync::ConcurrentHot;
use hot_core::HotTrie;
use hot_ycsb::{Dataset, DatasetKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_url_load_equals_single_threaded() {
    let n = 30_000;
    let data = BenchData::new(Dataset::generate(DatasetKind::Url, n, 21));
    let concurrent = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    let keys = Arc::new(data.dataset.keys.clone());
    let tids = Arc::new(data.tids.clone());

    std::thread::scope(|scope| {
        for t in 0..6 {
            let concurrent = Arc::clone(&concurrent);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    concurrent.insert(&keys[i], tids[i]);
                    i += 6;
                }
            });
        }
    });
    assert_eq!(concurrent.len(), n);
    concurrent.validate();

    let mut single = HotTrie::new(Arc::clone(&data.arena));
    for i in 0..n {
        single.insert(&data.dataset.keys[i], data.tids[i]);
    }
    // Determinism across synchronization modes: same final structure.
    assert_eq!(concurrent.depth_stats(), single.depth_stats());
    assert_eq!(
        concurrent.memory_stats().node_count,
        single.memory_stats().node_count
    );
    // Same contents in the same order.
    let concurrent_all = concurrent.scan(&[], n + 1);
    assert_eq!(concurrent_all, single.iter().collect::<Vec<_>>());
}

#[test]
fn mixed_operations_with_wait_free_readers() {
    let n = 20_000;
    let data = BenchData::new(Dataset::generate(DatasetKind::Email, n, 23));
    let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    let keys = Arc::new(data.dataset.keys.clone());
    let tids = Arc::new(data.tids.clone());

    // A permanent backbone (first quarter) that writers never touch.
    let backbone = n / 4;
    for i in 0..backbone {
        trie.insert(&keys[i], tids[i]);
    }
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Churning writers over the other three quarters.
        for t in 0..3u64 {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut x = 0xABCD_EF01u64 ^ t;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = backbone + (x as usize % (n - backbone));
                    if x.is_multiple_of(3) {
                        trie.remove(&keys[i]);
                    } else {
                        trie.insert(&keys[i], tids[i]);
                    }
                }
            });
        }
        // Readers: backbone always visible; scans always sorted.
        for t in 0..2u64 {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            let stop = Arc::clone(&stop);
            let arena = Arc::clone(&data.arena);
            scope.spawn(move || {
                let mut x = 0x1357_9BDFu64 ^ t;
                let mut scratch = [0u8; hot_keys::KEY_SCRATCH_LEN];
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = x as usize % backbone;
                    assert_eq!(trie.get(&keys[i]), Some(tids[i]), "backbone lost");
                    if x.is_multiple_of(7) {
                        let window = trie.scan(&keys[i], 20);
                        // Sorted by key (resolve via the arena).
                        use hot_keys::KeySource;
                        let mut prev: Option<Vec<u8>> = None;
                        for tid in window {
                            let k = arena.load_key(tid, &mut scratch).to_vec();
                            if let Some(p) = &prev {
                                assert!(*p < k, "scan out of order");
                            }
                            prev = Some(k);
                        }
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    trie.validate();
    for i in 0..backbone {
        assert_eq!(trie.get(&keys[i]), Some(tids[i]));
    }
}

#[test]
fn batched_readers_with_concurrent_writers() {
    // The batched descent holds one epoch pin across a whole group and may
    // observe torn slots mid-update; every lane must still resolve to
    // either the key's correct TID or None — never a wrong TID.
    let n = 20_000;
    let data = BenchData::new(Dataset::generate(DatasetKind::Email, n, 31));
    let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    let keys = Arc::new(data.dataset.keys.clone());
    let tids = Arc::new(data.tids.clone());

    // Stable backbone (first half); writers churn the second half.
    let backbone = n / 2;
    for i in 0..backbone {
        trie.insert(&keys[i], tids[i]);
    }
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut x = 0x2468_ACE0u64 ^ t;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let i = backbone + (x as usize % (n - backbone));
                    if x.is_multiple_of(3) {
                        trie.remove(&keys[i]);
                    } else {
                        trie.insert(&keys[i], tids[i]);
                    }
                }
            });
        }
        // Batched readers: groups mix stable and churning keys.
        for t in 0..2u64 {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            let tids = Arc::clone(&tids);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut cursor = hot_core::BatchCursor::new();
                let mut x = 0xFDB9_7531u64 ^ t;
                let mut idxs = [0usize; 16];
                let mut out = [None; 16];
                while !stop.load(Ordering::Relaxed) {
                    for slot in idxs.iter_mut() {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        *slot = x as usize % n;
                    }
                    let probe: Vec<&[u8]> = idxs.iter().map(|&i| keys[i].as_slice()).collect();
                    trie.get_batch_with(&probe, &mut out, &mut cursor);
                    for (&i, &got) in idxs.iter().zip(&out) {
                        if i < backbone {
                            assert_eq!(got, Some(tids[i]), "stable key lost in batch");
                        } else {
                            assert!(
                                got.is_none() || got == Some(tids[i]),
                                "batched lookup returned a foreign TID"
                            );
                        }
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    trie.validate();
    // Quiesced: batched and scalar agree on every key.
    let mut cursor = hot_core::BatchCursor::new();
    let probe: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let mut out = vec![None; n];
    trie.get_batch_with(&probe, &mut out, &mut cursor);
    for (k, &got) in probe.iter().zip(&out) {
        assert_eq!(got, trie.get(k));
    }
}

#[test]
fn concurrent_removes_to_empty() {
    let n = 10_000usize;
    let data = BenchData::new(Dataset::generate(DatasetKind::Integer, n, 29));
    let trie = Arc::new(ConcurrentHot::new(Arc::clone(&data.arena)));
    for i in 0..n {
        trie.insert(&data.dataset.keys[i], data.tids[i]);
    }
    let keys = Arc::new(data.dataset.keys.clone());
    std::thread::scope(|scope| {
        for t in 0..4 {
            let trie = Arc::clone(&trie);
            let keys = Arc::clone(&keys);
            scope.spawn(move || {
                let mut removed = 0;
                let mut i = t;
                while i < n {
                    if trie.remove(&keys[i]).is_some() {
                        removed += 1;
                    }
                    i += 4;
                }
                removed
            });
        }
    });
    assert_eq!(trie.len(), 0);
    assert!(trie.is_empty());
    for i in (0..n).step_by(53) {
        assert_eq!(trie.get(&data.dataset.keys[i]), None);
    }
}
