//! Umbrella crate for the HOT reproduction: re-exports every workspace
//! crate under one roof for the examples and integration tests.

pub use hot_art as art;
pub use hot_bench as bench;
pub use hot_bits as bits;
pub use hot_btree as btree;
pub use hot_core as core;
pub use hot_keys as keys;
pub use hot_masstree as masstree;
pub use hot_patricia as patricia;
pub use hot_ycsb as ycsb;
